#include "harness/result_cache.hh"

#include <array>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>

#include "common/metrics.hh"
#include "common/trace_span.hh"
#include "harness/atomic_io.hh"

namespace valley {
namespace harness {

// v4: checksummed record lines (atomic_io.hh) — pre-checksum epochs
// are skipped as stale on load.
// v5: mapper-registry spec keys — the scheme field holds the escaped
// canonical `map:` spec and a layout-identity field is appended, so
// pre-registry keys can never alias post-registry cells.
const char *kResultCacheVersion = "v5";

std::string
cacheDir()
{
    const char *env = std::getenv("VALLEY_CACHE_DIR");
    return env && *env ? env : "cache";
}

std::string
resultCachePath()
{
    return cacheDir() + "/valley_results_cache.csv";
}

namespace {

/**
 * The in-memory cache is sharded by key hash so parallel grid cells
 * do not serialize on one global lock; only the on-disk append and
 * the initial file load keep their own (cold-path) mutexes.
 */
constexpr std::size_t kCacheShards = 16;

struct CacheShard
{
    std::mutex mutex;
    std::map<std::string, RunResult> entries;
};

std::array<CacheShard, kCacheShards> shards;
std::mutex load_mutex;
bool loaded = false;

CacheShard &
shardFor(const std::string &key)
{
    return shards[std::hash<std::string>{}(key) % kCacheShards];
}

void
loadOnce()
{
    std::lock_guard<std::mutex> lock(load_mutex);
    if (loaded)
        return;
    loaded = true;
    // Corrupt lines (torn appends, bad checksums, wrong field
    // counts) are quarantined instead of aborting or poisoning the
    // run: the affected cells degrade to cache misses.
    loadChecksummedRecords(
        resultCachePath(), kResultCacheVersion,
        [](const std::string &key, const std::string &payload) {
            auto r = deserializeResult(payload);
            if (!r)
                return false;
            CacheShard &shard = shardFor(key);
            std::lock_guard<std::mutex> shard_lock(shard.mutex);
            shard.entries[key] = std::move(*r);
            return true;
        });
}

} // namespace

std::string
serializeResult(const RunResult &r)
{
    std::ostringstream out;
    out.precision(17);
    out << r.workload << ' ' << r.scheme << ' ' << r.cycles << ' '
        << r.seconds << ' ' << r.instructions << ' ' << r.requests
        << ' ' << r.l1Accesses << ' ' << r.l1Misses << ' '
        << r.llcAccesses << ' ' << r.llcMisses << ' ' << r.llcMissRate
        << ' ' << r.nocLatencySmCycles << ' ' << r.llcParallelism
        << ' ' << r.channelParallelism << ' ' << r.bankParallelism
        << ' ' << r.dram.reads << ' ' << r.dram.writes << ' '
        << r.dram.rowMisses << ' ' << r.dram.activations << ' '
        << r.dram.precharges << ' ' << r.dram.busBusyCycles << ' '
        << r.dram.latencySum << ' ' << r.rowBufferHitRate << ' '
        << r.dramPower.backgroundW << ' ' << r.dramPower.activateW
        << ' ' << r.dramPower.readW << ' ' << r.dramPower.writeW
        << ' ' << r.gpuPower.staticW << ' ' << r.gpuPower.dynamicW
        << ' ' << r.systemPowerW;
    return out.str();
}

std::optional<RunResult>
deserializeResult(const std::string &line)
{
    std::istringstream in(line);
    RunResult r;
    in >> r.workload >> r.scheme >> r.cycles >> r.seconds >>
        r.instructions >> r.requests >> r.l1Accesses >> r.l1Misses >>
        r.llcAccesses >> r.llcMisses >> r.llcMissRate >>
        r.nocLatencySmCycles >> r.llcParallelism >>
        r.channelParallelism >> r.bankParallelism >> r.dram.reads >>
        r.dram.writes >> r.dram.rowMisses >> r.dram.activations >>
        r.dram.precharges >> r.dram.busBusyCycles >>
        r.dram.latencySum >> r.rowBufferHitRate >>
        r.dramPower.backgroundW >> r.dramPower.activateW >>
        r.dramPower.readW >> r.dramPower.writeW >>
        r.gpuPower.staticW >> r.gpuPower.dynamicW >> r.systemPowerW;
    if (!in)
        return std::nullopt;
    // Trailing garbage means the field count is wrong for this
    // schema — corrupt, not just old.
    std::string extra;
    if (in >> extra)
        return std::nullopt;
    return r;
}

bool
cacheEnabled()
{
    const char *env = std::getenv("VALLEY_CACHE");
    return env == nullptr || std::string(env) != "0";
}

std::string
cacheKey(const std::string &config_name, const std::string &workload,
         const std::string &scheme, std::uint64_t seed, double scale,
         const std::string &layout)
{
    std::ostringstream out;
    out << kResultCacheVersion << ';' << config_name << ';' << workload
        << ';' << scheme << ';' << seed << ';' << scale << ';'
        << layout;
    return out.str();
}

std::optional<RunResult>
cacheLookup(const std::string &key)
{
    if (!cacheEnabled())
        return std::nullopt;
    static metrics::Histogram &lookup_us =
        metrics::histogram("cache.result.lookup_us");
    metrics::ScopedTimer timer(lookup_us);
    trace::Span span("result_cache.lookup", "cache");
    loadOnce();
    CacheShard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
        metrics::counter("cache.result.misses").inc();
        return std::nullopt;
    }
    metrics::counter("cache.result.hits").inc();
    return it->second;
}

void
cacheStore(const std::string &key, const RunResult &r)
{
    if (!cacheEnabled())
        return;
    loadOnce();
    metrics::counter("cache.result.stores").inc();
    {
        CacheShard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.entries[key] = r;
    }
    // Whole checksummed record in one O_APPEND write: concurrent
    // bench binaries can interleave records but never tear one.
    // Best-effort — a failed append only loses memoization.
    atomicAppend(resultCachePath(),
                 checksummedRecord(key, serializeResult(r)));
}

void
resultCacheResetForTesting()
{
    std::lock_guard<std::mutex> lock(load_mutex);
    for (CacheShard &s : shards) {
        std::lock_guard<std::mutex> shard_lock(s.mutex);
        s.entries.clear();
    }
    loaded = false;
}

} // namespace harness
} // namespace valley
