#include "harness/supervisor.hh"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <thread>

#include "common/metrics.hh"
#include "common/trace_span.hh"

namespace valley {
namespace harness {

namespace {

/** Spawn the child; returns -1 if fork itself failed. */
pid_t
spawn(const std::vector<std::string> &argv)
{
    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string &a : argv)
        cargv.push_back(const_cast<char *>(a.c_str()));
    cargv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid == 0) {
        ::execv(cargv[0], cargv.data());
        // exec failed: nothing of the parent to unwind — exit raw.
        std::perror("[supervise] execv");
        ::_exit(127);
    }
    return pid;
}

/** Wait for one child; returns exit code, or 128+sig if signaled. */
int
await(pid_t pid, bool &signaled)
{
    int wstatus = 0;
    signaled = false;
    for (;;) {
        const pid_t r = ::waitpid(pid, &wstatus, 0);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return 127; // lost track of the child; treat as a crash
        }
        if (WIFEXITED(wstatus))
            return WEXITSTATUS(wstatus);
        if (WIFSIGNALED(wstatus)) {
            signaled = true;
            return 128 + WTERMSIG(wstatus);
        }
        // Stopped/continued: keep waiting for termination.
    }
}

} // namespace

SuperviseOutcome
supervise(const std::vector<std::string> &child_argv,
          const SupervisorOptions &opts)
{
    SuperviseOutcome out;
    for (;;) {
        const pid_t pid = spawn(child_argv);
        bool signaled = false;
        const int code = pid < 0 ? 127 : await(pid, signaled);

        const bool final_exit =
            !signaled &&
            std::find(opts.noRestartExits.begin(),
                      opts.noRestartExits.end(),
                      code) != opts.noRestartExits.end();
        if (final_exit) {
            out.exitCode = code;
            return out;
        }

        // A crash (signal, injector _Exit, exec failure). Restart if
        // budget remains; the journal makes each incarnation resume
        // where the last died.
        if (out.restarts >= opts.maxRestarts) {
            out.exitCode = code;
            out.exhausted = true;
            if (opts.log)
                std::fprintf(stderr,
                             "[supervise] giving up after %u "
                             "restart(s); last child %s %d\n",
                             out.restarts,
                             signaled ? "died with signal code"
                                      : "exited with code",
                             code);
            return out;
        }
        ++out.restarts;
        metrics::counter("supervisor.restarts").inc();
        trace::instant("supervisor_restart", "supervisor");
        if (opts.log)
            std::fprintf(stderr,
                         "[supervise] child %s %d; restarting "
                         "(%u/%u)\n",
                         signaled ? "died with signal code"
                                  : "crashed with code",
                         code, out.restarts, opts.maxRestarts);
        if (opts.backoffMs != 0) {
            const std::uint64_t ms = std::min<std::uint64_t>(
                5000, static_cast<std::uint64_t>(opts.backoffMs)
                          << std::min(out.restarts - 1, 31u));
            std::this_thread::sleep_for(
                std::chrono::milliseconds(ms));
        }
    }
}

} // namespace harness
} // namespace valley
