/**
 * @file
 * Experiment harness: runs workloads x schemes grids, normalizes
 * metrics against BASE, and aggregates means the way the paper's
 * figures do (harmonic mean for speedups, arithmetic elsewhere).
 */

#ifndef VALLEY_HARNESS_EXPERIMENT_HH
#define VALLEY_HARNESS_EXPERIMENT_HH

#include <functional>
#include <string>
#include <vector>

#include "common/cancellation.hh"
#include "gpu/gpu_system.hh"
#include "gpu/run_result.hh"
#include "gpu/sim_config.hh"
#include "harness/grid_report.hh"
#include "mapping/address_mapper.hh"
#include "workloads/workload.hh"
#include "workloads/workload_set.hh"

namespace valley {
namespace harness {

/** Grid options. */
struct GridOptions
{
    SimConfig config = SimConfig::paperBaseline();
    std::vector<std::string> workloads;  ///< Table II abbreviations

    /**
     * Legacy scheme axis. A convenience facade over `mappers`: when
     * `mappers` is empty, each enum value is translated to its
     * registry spec (`mapping::schemeSpec`) at grid start. Ignored
     * when `mappers` is set explicitly.
     */
    std::vector<Scheme> schemes = allSchemes();

    /**
     * The grid's mapper axis as registry spec strings
     * (`map:FAMILY[,k=v]...` — mapping/mapper_registry.hh). Empty =
     * derived from `schemes`. Canonicalized in place by `runGrid`,
     * so `Grid::options().mappers` always holds canonical specs.
     */
    std::vector<std::string> mappers;

    /**
     * Layout axis for `runGrids`: `layout:KEY` specs
     * (mapping/layout_registry.hh). Empty = just `config.layout`.
     * Plain `runGrid` ignores this and runs `config.layout` only.
     */
    std::vector<std::string> layouts;

    std::uint64_t bimSeed = 1;           ///< "BIM-1" of Fig. 19
    double scale = 1.0;                  ///< workload problem scale

    /**
     * Log progress to stderr: one line per launched cell, a running
     * cells-done / total counter with resume-skip counts, and a final
     * summary including work-steal and cache-quarantine counters.
     */
    bool progress = false;
    bool useCache = false;               ///< memoize via result_cache

    /**
     * Checkpoint every finished cell to a per-grid journal
     * (`GridJournal`) and, on the next run of the same grid, resume
     * by skipping every journaled cell — bit-identically, whether the
     * previous run was interrupted mid-grid or completed.
     * `VALLEY_CHECKPOINT=1` in the environment turns this on without
     * touching call sites (any value but "0" counts). Independent of
     * `useCache`: the journal records *this grid's* cells even when
     * the global result cache is disabled.
     */
    bool checkpoint = false;

    /**
     * Members of the joint set GBIM cells search against; empty =
     * `workloads` (one global BIM for the whole grid's workload
     * axis, the usual figs 10/12/20-style comparison). Ignored by
     * every other scheme.
     */
    std::vector<std::string> jointSet;

    /**
     * Worker threads for the grid: 1 = serial, 0 = one per hardware
     * thread. Every (workload, scheme) cell is an independent
     * simulation with its own GpuSystem and deterministically seeded
     * RNGs, so the parallel grid is bit-identical to the serial one.
     */
    unsigned threads = 0;

    /**
     * Simulation attempts per cell before the cell is given up on
     * (>= 1; 0 is treated as 1). The default keeps the historical
     * contract — one attempt, first failure propagates — which the
     * fault-injection drills (`bench/resume_smoke`) rely on. With
     * more attempts, a failed attempt is retried after a
     * deterministic exponential backoff and only the final failure
     * is surfaced (or quarantined — see `poison`).
     */
    unsigned maxAttempts = 1;

    /**
     * Base of the deterministic exponential retry backoff: attempt k
     * (1-based) sleeps `retryBackoffMs << (k-1)` milliseconds before
     * retrying. 0 (default) retries immediately — the right choice
     * for deterministic in-process faults; nonzero gives transient
     * environmental faults (ENOSPC, OOM-kill fallout) room to clear.
     * Backoff only delays; it never changes any computed result.
     */
    unsigned retryBackoffMs = 0;

    /**
     * Quarantine instead of abort: a cell that fails *every* attempt
     * is journaled as poisoned (when `checkpoint` is on; crash
     * invariant 5: the mark is written before the failure is
     * surfaced), recorded in the grid report with its failure
     * reason, and the grid *continues* — completing with
     * success-with-degradation (`GridReport::degraded()`) rather
     * than throwing. Resumed runs skip poisoned cells. Off by
     * default: the historical behavior (first cell failure aborts
     * the whole grid) is what the interrupt/resume drills expect.
     */
    bool poison = false;

    /**
     * Write the ranked `cache/grid_report_<id>.json` artifact after
     * the run (the in-memory `Grid::report()` is populated either
     * way).
     */
    bool report = false;

    /**
     * Wall-clock budget for the whole grid in milliseconds (0 = the
     * `VALLEY_DEADLINE_MS` environment value, or unlimited when that
     * is unset too). When the budget expires the grid stops
     * *starting* cells — in-flight cells finish and are journaled
     * normally, remaining cells are reported deadline-missed — and
     * returns a degraded grid instead of running over. Checkpointed
     * journals stay bit-exact because a cell is either fully
     * simulated or not run at all; which cells made the cut is
     * wall-clock-dependent, so deterministic tests use explicit
     * `cancel` tokens instead of deadlines.
     */
    std::uint64_t deadlineMs = 0;

    /**
     * Optional external cancellation token (non-owning; must outlive
     * the call). The grid derives a child token from it, so SIGINT
     * handlers or embedding services can stop a sweep at the next
     * cell boundary; the deadline above arms the child and therefore
     * composes with (never extends) the parent's own deadline.
     */
    const CancelToken *cancel = nullptr;
};

/**
 * Simulate one (config, mapper spec, workload) combination. The
 * spec is resolved through the mapper registry; the searched
 * families route through `search::` (`map:sbim` over the singleton
 * `{workload}`, `map:gbim` over `joint_set`).
 *
 * @param joint_set for `map:gbim`, the workload set the joint BIM is
 *        searched against (every cell of a grid shares one set, and
 *        therefore one matrix); null = the degenerate singleton
 *        `{workload}`. Ignored by every other family.
 */
RunResult runOne(const SimConfig &config, const std::string &mapper_spec,
                 const std::string &workload, double scale = 1.0,
                 std::uint64_t bim_seed = 1,
                 const workloads::WorkloadSet *joint_set = nullptr);

/** Legacy-enum facade: `runOne(config, mapping::schemeSpec(s), ...)`. */
RunResult runOne(const SimConfig &config, Scheme scheme,
                 const std::string &workload, double scale = 1.0,
                 std::uint64_t bim_seed = 1,
                 const workloads::WorkloadSet *joint_set = nullptr);

/** Like runOne, but consults/updates the on-disk result cache. */
RunResult runOneCached(const SimConfig &config,
                       const std::string &mapper_spec,
                       const std::string &workload, double scale = 1.0,
                       std::uint64_t bim_seed = 1,
                       const workloads::WorkloadSet *joint_set =
                           nullptr);

/** Legacy-enum facade of the cached variant. */
RunResult runOneCached(const SimConfig &config, Scheme scheme,
                       const std::string &workload, double scale = 1.0,
                       std::uint64_t bim_seed = 1,
                       const workloads::WorkloadSet *joint_set =
                           nullptr);

/**
 * Results of a workloads x schemes grid with paper-style
 * normalization helpers. BASE must be part of the scheme list for
 * the normalized metrics.
 */
class Grid
{
  public:
    Grid(GridOptions opts, std::vector<std::vector<RunResult>> results,
         GridReport report = {});

    const GridOptions &options() const { return opts; }

    /**
     * Per-cell outcome ranking of the run that produced this grid
     * (see grid_report.hh). `report().degraded()` means some cells
     * hold default-constructed results (poisoned or deadline-missed)
     * and the normalized metrics below must not be trusted.
     */
    const GridReport &report() const { return report_; }

    const RunResult &at(const std::string &workload, Scheme s) const;

    /** Cell lookup by mapper spec (any spelling; canonicalized). */
    const RunResult &at(const std::string &workload,
                        const std::string &mapper_spec) const;

    /** Exec-time speedup over BASE for one cell. */
    double speedup(const std::string &workload, Scheme s) const;

    /** Speedup over BASE by mapper spec (`map:base` must be on the
     *  axis, as BASE must be for the enum overloads). */
    double speedup(const std::string &workload,
                   const std::string &mapper_spec) const;

    /** DRAM power normalized to BASE. */
    double dramPowerNorm(const std::string &workload, Scheme s) const;

    /** System power normalized to BASE. */
    double systemPowerNorm(const std::string &workload,
                           Scheme s) const;

    /** Performance per Watt normalized to BASE. */
    double perfPerWattNorm(const std::string &workload,
                           Scheme s) const;

    /** Harmonic mean of per-workload speedups (paper HMEAN bars). */
    double hmeanSpeedup(Scheme s) const;

    /** Arithmetic mean of a per-cell metric across workloads. */
    double mean(Scheme s,
                const std::function<double(const RunResult &)> &metric)
        const;

    /** Arithmetic mean of normalized DRAM power across workloads. */
    double meanDramPowerNorm(Scheme s) const;

    /** Arithmetic mean of normalized exec time across workloads. */
    double meanExecTimeNorm(Scheme s) const;

    /** Arithmetic mean of normalized system power. */
    double meanSystemPowerNorm(Scheme s) const;

    /** Harmonic mean of normalized perf/Watt. */
    double hmeanPerfPerWattNorm(Scheme s) const;

  private:
    std::size_t wIndex(const std::string &workload) const;
    std::size_t sIndex(Scheme s) const;
    std::size_t sIndex(const std::string &mapper_spec) const;

    GridOptions opts;
    std::vector<std::vector<RunResult>> results; // [workload][mapper]
    GridReport report_;
};

/**
 * Resolve the mapper axis in place: derive `mappers` from `schemes`
 * when empty, then canonicalize every spec (throws
 * `std::invalid_argument` on an unknown family/parameter). `runGrid`
 * calls this first; CLIs call it to validate user specs up front.
 */
void normalizeGridAxes(GridOptions &opts);

/** Run the full grid. */
Grid runGrid(GridOptions opts);

/** One per-layout grid of a `runGrids` sweep. */
struct LayoutGrid
{
    std::string layout; ///< canonical layout identity of this grid
    Grid grid;
};

/**
 * Run the grid once per entry of `opts.layouts` (the whole mapper x
 * workload grid becomes a 3D sweep with the layout axis outermost).
 * Empty `layouts` = one grid on `opts.config.layout`. Each layout's
 * journal/cache identities are distinct: the layout identity is a
 * first-class field of the cell cache keys and the grid identity.
 */
std::vector<LayoutGrid> runGrids(GridOptions opts);

} // namespace harness
} // namespace valley

#endif // VALLEY_HARNESS_EXPERIMENT_HH
