#include "harness/atomic_io.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/fault_inject.hh"
#include "common/fnv.hh"
#include "common/metrics.hh"
#include "harness/result_cache.hh"

namespace valley {
namespace harness {

namespace {

/**
 * The quarantine tally lives in the metrics registry — one source of
 * truth shared with `--metrics` snapshots; `quarantinedLineCount()`
 * delegates to it.
 */
metrics::Counter &
quarantinedCounter()
{
    static metrics::Counter &c =
        metrics::counter("cache.quarantined_lines");
    return c;
}

void
ensureParentDir(const std::string &path)
{
    const std::filesystem::path p(path);
    std::error_code ec; // best-effort, mirrors the old cache stores
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
}

std::string
hex16(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Sidecar lock-file path for a data file: `.<basename>.lock`. */
std::string
lockPathFor(const std::string &path)
{
    const std::filesystem::path p(path);
    std::string lockName(".");
    lockName += p.filename().string();
    lockName += ".lock";
    return (p.parent_path() / lockName).string();
}

/**
 * RAII exclusive flock on a sidecar `<path>.lock` file. The lock
 * lives on a file that is never renamed: `atomicWriteFile` replaces
 * the data file's inode, so an flock on the data file itself would
 * silently stop excluding appenders that open the path after the
 * rename. Every appender and the load-time quarantine rewrite take
 * this lock, which makes read+rewrite atomic with respect to
 * concurrent appends (from other processes AND other threads —
 * each holder opens its own descriptor, so flock serializes both).
 * Best-effort: if the lock file cannot be opened we proceed
 * unlocked, matching the caches' lose-memoization-never-correctness
 * contract.
 *
 * The lock file is a *dotfile* (`.<basename>.lock`) so directory
 * scans for data files (e.g. the journal's `grid_journal_*` glob)
 * never pick it up as an empty data file.
 *
 * Acquisition verifies the locked inode: `cleanStaleLock` may unlink
 * the lock file between our open(2) and flock(2), in which case we
 * hold an exclusive lock on an orphaned inode that excludes nobody —
 * a second opener would create (and lock) a fresh file at the same
 * path. On an fstat/stat identity mismatch we drop the orphan and
 * retry *unconditionally*: a mismatch can only happen because some
 * other actor unlinked the path after our open(2), so every retry is
 * preceded by system-wide progress and the loop terminates as soon
 * as sweeping stops. A bounded retry budget here is a correctness
 * hole, not a safety valve — a blocked acquirer synchronizes with
 * the unlinking loader via the flock itself, so under load it can
 * lose the open-vs-unlink race on *every* sweep, exhaust any fixed
 * budget, and silently proceed unlocked into a quarantine rewrite
 * that then discards its append. Only hard open/flock errors degrade
 * to the unlocked best-effort path.
 */
class FileLock
{
  public:
    explicit FileLock(const std::string &path)
    {
        ensureParentDir(path);
        const std::string lockPath = lockPathFor(path);
        for (;;) {
            fd = ::open(lockPath.c_str(), O_WRONLY | O_CREAT, 0644);
            if (fd < 0)
                return; // proceed unlocked (best-effort)
            if (::flock(fd, LOCK_EX) != 0) {
                ::close(fd);
                fd = -1;
                return;
            }
            struct stat fd_st, path_st;
            if (::fstat(fd, &fd_st) == 0 &&
                ::stat(lockPath.c_str(), &path_st) == 0 &&
                fd_st.st_ino == path_st.st_ino &&
                fd_st.st_dev == path_st.st_dev)
                return; // locked the live lock file
            ::flock(fd, LOCK_UN);
            ::close(fd);
            fd = -1;
        }
    }

    ~FileLock()
    {
        if (fd >= 0) {
            ::flock(fd, LOCK_UN);
            ::close(fd);
        }
    }

    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;

  private:
    int fd = -1;
};

} // namespace

bool
cleanStaleLock(const std::string &path)
{
    const std::string lockPath = lockPathFor(path);
    const int fd = ::open(lockPath.c_str(), O_WRONLY, 0644);
    if (fd < 0)
        return false; // no sidecar — nothing stale
    // Non-blocking probe: a *live* holder (flock held by a running
    // process) makes this fail with EWOULDBLOCK and we leave the file
    // alone. Success means the previous holder is gone — flock(2) is
    // released by the kernel on process death, so a sidecar we can
    // lock instantly is a leftover, not a guard.
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
        ::close(fd);
        return false;
    }
    // The probe fd must still be the path's inode before we unlink:
    // if another sweep already removed it and a FileLock recreated
    // the sidecar, our lock is on the orphan and unlink(2) by path
    // would strip a *live* holder's lock file out from under it.
    struct stat fd_st, path_st;
    if (::fstat(fd, &fd_st) != 0 ||
        ::stat(lockPath.c_str(), &path_st) != 0 ||
        fd_st.st_ino != path_st.st_ino ||
        fd_st.st_dev != path_st.st_dev) {
        ::flock(fd, LOCK_UN);
        ::close(fd);
        return false;
    }
    // Unlink while still holding the lock: a concurrent FileLock that
    // raced us onto this inode sees the fstat/stat mismatch and
    // retries on a fresh file.
    const bool removed = ::unlink(lockPath.c_str()) == 0;
    ::flock(fd, LOCK_UN);
    ::close(fd);
    return removed;
}

bool
atomicAppend(const std::string &path, std::string_view data)
{
    fault::maybeInject("cache_write");
    ensureParentDir(path);
    // The flock (not O_APPEND, which already prevents intra-record
    // tearing) is what keeps this append from racing a concurrent
    // loadChecksummedRecords quarantine rewrite: the rewrite holds
    // the same lock across its read+rename, so our record is either
    // read (and preserved) or appended to the new file.
    FileLock lock(path);
    const int fd = ::open(path.c_str(),
                          O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0)
        return false;
    // One write(2) for the whole record: O_APPEND makes the
    // seek-to-end + write atomic with respect to other appenders.
    std::size_t off = 0;
    bool ok = true;
    while (off < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + off, data.size() - off);
        if (n <= 0) {
            ok = false;
            break;
        }
        off += static_cast<std::size_t>(n);
        // A short write can only tear across records if another
        // appender slips in; that line then fails its checksum on
        // load and is quarantined — detectable, not fatal.
    }
    ::close(fd);
    return ok;
}

bool
atomicWriteFile(const std::string &path, std::string_view contents)
{
    ensureParentDir(path);
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;
    std::size_t off = 0;
    bool ok = true;
    while (off < contents.size()) {
        const ssize_t n =
            ::write(fd, contents.data() + off, contents.size() - off);
        if (n <= 0) {
            ok = false;
            break;
        }
        off += static_cast<std::size_t>(n);
    }
    if (ok)
        ok = ::fsync(fd) == 0;
    ::close(fd);
    if (ok)
        ok = std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok)
        ::unlink(tmp.c_str());
    return ok;
}

std::string
checksummedRecord(std::string_view key, std::string_view payload)
{
    // Enforced unconditionally (not assert — NDEBUG builds must not
    // write a record that parses as two lines, one of which then
    // fails its checksum and quarantines on the next load). An
    // invalid key/payload yields an empty record: the caller's
    // append becomes a no-op, degrading to a cache miss.
    if (key.find_first_of("|\n\r", 0) != std::string_view::npos ||
        key.find('\0') != std::string_view::npos ||
        payload.find_first_of("\n\r", 0) != std::string_view::npos ||
        payload.find('\0') != std::string_view::npos) {
        std::fprintf(stderr,
                     "[valley] checksummedRecord: key or payload "
                     "contains '|', newline, or NUL; record "
                     "dropped\n");
        return std::string();
    }
    std::string body;
    body.reserve(key.size() + payload.size() + 20);
    body.append(key);
    body.push_back('|');
    body.append(payload);
    const std::uint64_t crc = bits::fnv1a(body);
    body.append("|c");
    body.append(hex16(crc));
    body.push_back('\n');
    return body;
}

std::optional<std::pair<std::string, std::string>>
parseChecksummedRecord(std::string_view line)
{
    if (line.find('\0') != std::string_view::npos)
        return std::nullopt;
    const auto crc_sep = line.rfind('|');
    if (crc_sep == std::string_view::npos)
        return std::nullopt;
    const std::string_view crc_field = line.substr(crc_sep + 1);
    if (crc_field.size() != 17 || crc_field[0] != 'c')
        return std::nullopt;
    std::uint64_t want = 0;
    for (char c : crc_field.substr(1)) {
        unsigned digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<unsigned>(c - 'a') + 10;
        else
            return std::nullopt;
        want = (want << 4) | digit;
    }
    const std::string_view body = line.substr(0, crc_sep);
    if (bits::fnv1a(body) != want)
        return std::nullopt;
    const auto key_sep = body.find('|');
    if (key_sep == std::string_view::npos)
        return std::nullopt;
    return std::make_pair(std::string(body.substr(0, key_sep)),
                          std::string(body.substr(key_sep + 1)));
}

LoadStats
loadChecksummedRecords(
    const std::string &path, std::string_view version_prefix,
    const std::function<bool(const std::string &key,
                             const std::string &payload)> &accept)
{
    LoadStats stats;
    // Cache-open is the natural sweep point for sidecars orphaned by
    // a killed writer: probe-and-remove before (re)creating our own.
    cleanStaleLock(path);
    // Exclusive lock across the whole read (+ possible quarantine
    // rewrite below): a record appended between our read pass and
    // the rename would otherwise be silently discarded by the
    // rewrite, breaking the concurrent-appender guarantee.
    FileLock lock(path);
    std::ifstream in(path);
    if (!in)
        return stats;

    std::vector<std::string> kept; // good + stale lines, verbatim
    std::vector<std::string> bad;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        // A line of a different schema epoch is stale, not corrupt:
        // skip it before checksum verification (pre-checksum cache
        // files and future formats both land here) and keep it for
        // whatever binary still speaks that version.
        const auto key_sep = line.find('|');
        const std::string_view key_view =
            key_sep == std::string::npos
                ? std::string_view(line)
                : std::string_view(line).substr(0, key_sep);
        if (key_view.substr(0, version_prefix.size()) !=
            version_prefix) {
            ++stats.staleVersion;
            kept.push_back(line);
            continue;
        }
        const auto rec = parseChecksummedRecord(line);
        if (rec && accept(rec->first, rec->second)) {
            ++stats.accepted;
            kept.push_back(line);
        } else {
            ++stats.quarantined;
            bad.push_back(line);
        }
    }
    in.close();

    if (!bad.empty()) {
        const std::string base =
            std::filesystem::path(path).filename().string();
        const std::string qpath = cacheDir() + "/quarantine/" + base;
        std::string qlines;
        for (const std::string &l : bad) {
            qlines += l;
            qlines += '\n';
        }
        atomicAppend(qpath, qlines);
        std::string good;
        for (const std::string &l : kept) {
            good += l;
            good += '\n';
        }
        atomicWriteFile(path, good);
        quarantinedCounter().add(bad.size());
        std::fprintf(stderr,
                     "[valley] %s: quarantined %zu corrupt line(s) "
                     "-> %s (recomputed on next use)\n",
                     base.c_str(), bad.size(), qpath.c_str());
    }
    if (stats.staleVersion != 0)
        metrics::counter("cache.stale_lines").add(stats.staleVersion);
    return stats;
}

std::uint64_t
quarantinedLineCount()
{
    return quarantinedCounter().value();
}

} // namespace harness
} // namespace valley
