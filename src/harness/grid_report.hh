/**
 * @file
 * Per-grid degradation report: the machine-readable answer to "did
 * that unattended sweep actually finish clean, and if not, what
 * exactly did it cost?".
 *
 * `runGrid` classifies every (workload, scheme) cell as it retires —
 * ok / resumed-from-journal / retried / poisoned / deadline-missed —
 * and folds the classification, plus the run's quarantine and
 * work-steal counters, into a `GridReport`. The report always exists
 * in memory (the `Grid` carries it, so tests and `tools/valley_grid`
 * can branch on `degraded()`); with `GridOptions::report` it is also
 * written as `cache/grid_report_<grid id>.json` (atomic replace), the
 * artifact CI uploads so a degraded soak run names its casualties
 * without anyone re-running the sweep.
 *
 * Cells are *ranked*: most degraded first (poisoned, then
 * deadline-missed, then retried-but-recovered, then resumed, then
 * clean), ties in grid order — so a human reading the first lines of
 * the JSON sees the problems, not the 95 healthy cells.
 */

#ifndef VALLEY_HARNESS_GRID_REPORT_HH
#define VALLEY_HARNESS_GRID_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace valley {
namespace harness {

/** Terminal state of one grid cell. */
enum class CellStatus
{
    NotRun,         ///< never started (transient; becomes DeadlineMissed)
    Ok,             ///< simulated cleanly on the first attempt
    Resumed,        ///< restored from the checkpoint journal
    Retried,        ///< succeeded after >= 1 failed attempt
    Poisoned,       ///< failed every attempt; quarantined in the journal
    DeadlineMissed, ///< skipped: deadline/cancellation fired first
};

/** Stable lower-case name (JSON field values, progress lines). */
const char *cellStatusName(CellStatus s);

/** One cell's line in the report. */
struct CellReport
{
    std::string workload;
    std::string scheme;
    CellStatus status = CellStatus::NotRun;
    unsigned attempts = 0;  ///< simulation attempts (0 if never run)
    std::string reason;     ///< failure reason (poisoned cells only)
};

/** Ranked per-cell outcome summary of one `runGrid` call. */
struct GridReport
{
    std::string gridId;             ///< `gridIdHex` of the grid identity
    std::vector<CellReport> cells;  ///< ranked most-degraded-first

    std::size_t ok = 0;
    std::size_t resumed = 0;
    std::size_t retried = 0;
    std::size_t poisoned = 0;
    std::size_t deadlineMissed = 0;

    std::uint64_t steals = 0;           ///< pool work-steal count
    std::uint64_t quarantinedLines = 0; ///< cache lines quarantined
    bool deadlineHit = false; ///< the grid's deadline/cancel fired

    /**
     * Success-with-degradation: the grid returned, but some cells
     * hold no simulated result (poisoned or deadline-missed).
     * Consumers must not feed such a grid into paper-figure math;
     * `tools/valley_grid` maps it to its degraded exit code.
     */
    bool
    degraded() const
    {
        return poisoned != 0 || deadlineMissed != 0;
    }

    /** `cacheDir()/grid_report_<grid id hex>.json`. */
    static std::string pathFor(const std::string &grid_id_hex);

    /** Sort cells most-degraded-first and recompute the counters. */
    void finalize();

    /** Render as a JSON document (stable key order, 2-space indent). */
    std::string toJson() const;

    /** Atomically write `toJson()` to `pathFor(gridId)`. */
    bool write() const;
};

} // namespace harness
} // namespace valley

#endif // VALLEY_HARNESS_GRID_REPORT_HH
