/**
 * @file
 * Checkpoint journal for `runGrid`: crash-safe record of every
 * finished (workload, scheme) cell, enabling bit-identical resume of
 * an interrupted mega-grid.
 *
 * A full-scale grid is hours of simulation; losing it to a crash at
 * cell N-1 used to mean recomputing everything (or trusting the
 * result cache, which a user may have disabled). With checkpointing
 * on (`GridOptions::checkpoint` or `VALLEY_CHECKPOINT=1`), `runGrid`
 * appends one journal record per finished cell and, on the next run
 * of the *same* grid, loads the journal first and skips every cell it
 * already holds.
 *
 * ## Record format and crash-consistency invariants
 *
 * The journal reuses the result-cache wire format verbatim: one
 * `checksummedRecord` line per cell,
 *
 *     <cell key>|<serializeResult payload>|c<16-hex FNV-1a>\n
 *
 * where the cell key is the cell's result-cache key (version-prefixed
 * `kResultCacheVersion`, unique per config/workload/scheme/seed/scale
 * and — for GBIM — joint set). The invariants:
 *
 *  - a record is appended with ONE O_APPEND write(2) (`atomicAppend`)
 *    *after* its cell finishes, so the journal never names a cell
 *    whose result was not fully computed, and a kill between cells
 *    loses at most cells in flight, never written ones;
 *  - a kill *during* the append leaves a truncated tail line that
 *    fails its checksum on load and is quarantined — the cell reruns;
 *  - payload doubles round-trip at precision 17, so a resumed cell is
 *    bit-identical to the original computation (`RunResult::config`
 *    is not serialized and is restamped on load, exactly like the
 *    result cache);
 *  - records are idempotent by key: duplicate appends (e.g. two
 *    interrupted runs racing) are harmless, last-in wins with an
 *    identical value.
 *
 * The journal file lives under `cacheDir()` and is named by an FNV-1a
 * hash of the grid identity (config, workload axis, scheme axis, BIM
 * seed, scale, joint set), so different grids never share a journal
 * and a finished journal simply short-circuits an identical re-run.
 *
 * ## Poisoned-cell records
 *
 * A second record kind quarantines *cells*, not lines: a cell that
 * failed every retry attempt (`GridOptions::maxAttempts`, poison mode)
 * is journaled as
 *
 *     <cell key>|!poisoned <percent-escaped reason>|c<16-hex FNV-1a>\n
 *
 * — same wire format, same cell key, but a `!poisoned ` payload
 * marker in place of a serialized result (`serializeResult` payloads
 * begin with a workload abbreviation, which can never start with
 * `!`). On resume a poisoned cell is *skipped with its recorded
 * reason* instead of re-simulated, so one deterministically
 * pathological scenario costs one cell per sweep, not one crash per
 * attempt. The reason is percent-escaped (`escapeSpecField`) so an
 * exception message containing `|` or a newline cannot tear the
 * record. Crash-consistency invariant 5: the poisoned mark is
 * appended *before* the final failure is surfaced to the grid, so a
 * kill immediately after the last failed attempt cannot lose the
 * quarantine decision.
 */

#ifndef VALLEY_HARNESS_GRID_JOURNAL_HH
#define VALLEY_HARNESS_GRID_JOURNAL_HH

#include <map>
#include <string>

#include "gpu/run_result.hh"

namespace valley {
namespace harness {

/**
 * 16-hex-digit FNV-1a hash of a grid identity string — the shared
 * naming token of everything filed per-grid under `cacheDir()`
 * (`grid_journal_<id>.csv`, `grid_report_<id>.json`).
 */
std::string gridIdHex(const std::string &grid_identity);

/** Everything a journal knows about one grid's past runs. */
struct JournalContents
{
    /** Finished cells: cell key -> bit-exact recorded result. */
    std::map<std::string, RunResult> cells;
    /** Quarantined cells: cell key -> unescaped failure reason. */
    std::map<std::string, std::string> poisoned;
};

/** Append-only checkpoint journal of one grid's finished cells. */
class GridJournal
{
  public:
    /** Journal over an explicit file path (tests, benches). */
    explicit GridJournal(std::string path) : path_(std::move(path)) {}

    /**
     * Canonical journal path of a grid:
     * `cacheDir()/grid_journal_<gridIdHex(grid_identity)>.csv`.
     */
    static std::string pathFor(const std::string &grid_identity);

    const std::string &path() const { return path_; }

    /**
     * Load every finished cell: cell key -> result. Corrupt lines
     * (torn appends, bad checksums) are skipped-and-quarantined via
     * `loadChecksummedRecords` — an interrupted run's half-written
     * tail costs one cell, not the journal. Missing file = empty map.
     * Poisoned records are dropped here; use `loadAll` to see them.
     */
    std::map<std::string, RunResult> load() const;

    /**
     * Load finished *and* poisoned cells in one pass. A key present
     * in both maps (cell poisoned by one run, completed by a later
     * one after e.g. a fault was fixed) counts as finished — success
     * trumps a stale quarantine.
     */
    JournalContents loadAll() const;

    /**
     * Append one finished cell (crash-safe, thread-safe: whole record
     * in one O_APPEND write). Best-effort like the caches — a failed
     * append only means that cell reruns after an interruption.
     *
     * This (and `recordPoisoned`) is the `journal_append` fault
     * site, firing before the underlying `cache_write` site.
     */
    bool record(const std::string &cell_key, const RunResult &r) const;

    /**
     * Quarantine one cell that failed every retry attempt: append a
     * `!poisoned` record with the (percent-escaped) failure reason.
     * Resuming runs skip the cell and surface the reason in their
     * grid report instead of re-simulating it.
     */
    bool recordPoisoned(const std::string &cell_key,
                        const std::string &reason) const;

  private:
    std::string path_;
};

} // namespace harness
} // namespace valley

#endif // VALLEY_HARNESS_GRID_JOURNAL_HH
