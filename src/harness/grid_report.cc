#include "harness/grid_report.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/metrics.hh"
#include "harness/atomic_io.hh"
#include "harness/result_cache.hh"

namespace valley {
namespace harness {

namespace {

/** Degradation rank: higher sorts earlier in the report. */
int
severity(CellStatus s)
{
    switch (s) {
    case CellStatus::Poisoned:
        return 5;
    case CellStatus::DeadlineMissed:
        return 4;
    case CellStatus::NotRun:
        return 3;
    case CellStatus::Retried:
        return 2;
    case CellStatus::Resumed:
        return 1;
    case CellStatus::Ok:
        return 0;
    }
    return 0;
}

/** Minimal JSON string escaping (quotes, backslash, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace

const char *
cellStatusName(CellStatus s)
{
    switch (s) {
    case CellStatus::NotRun:
        return "not_run";
    case CellStatus::Ok:
        return "ok";
    case CellStatus::Resumed:
        return "resumed";
    case CellStatus::Retried:
        return "retried";
    case CellStatus::Poisoned:
        return "poisoned";
    case CellStatus::DeadlineMissed:
        return "deadline_missed";
    }
    return "unknown";
}

std::string
GridReport::pathFor(const std::string &grid_id_hex)
{
    return cacheDir() + "/grid_report_" + grid_id_hex + ".json";
}

void
GridReport::finalize()
{
    // Stable sort: ties keep grid (workload-major) order, so the
    // ranking is deterministic regardless of scheduling.
    std::stable_sort(cells.begin(), cells.end(),
                     [](const CellReport &a, const CellReport &b) {
                         return severity(a.status) > severity(b.status);
                     });
    ok = resumed = retried = poisoned = deadlineMissed = 0;
    for (const CellReport &c : cells) {
        switch (c.status) {
        case CellStatus::Ok:
            ++ok;
            break;
        case CellStatus::Resumed:
            ++resumed;
            break;
        case CellStatus::Retried:
            ++retried;
            break;
        case CellStatus::Poisoned:
            ++poisoned;
            break;
        case CellStatus::NotRun:
        case CellStatus::DeadlineMissed:
            ++deadlineMissed;
            break;
        }
    }
}

std::string
GridReport::toJson() const
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"grid_id\": \"" << jsonEscape(gridId) << "\",\n";
    out << "  \"degraded\": " << (degraded() ? "true" : "false")
        << ",\n";
    out << "  \"deadline_hit\": " << (deadlineHit ? "true" : "false")
        << ",\n";
    out << "  \"cells_total\": " << cells.size() << ",\n";
    out << "  \"ok\": " << ok << ",\n";
    out << "  \"resumed\": " << resumed << ",\n";
    out << "  \"retried\": " << retried << ",\n";
    out << "  \"poisoned\": " << poisoned << ",\n";
    out << "  \"deadline_missed\": " << deadlineMissed << ",\n";
    out << "  \"steals\": " << steals << ",\n";
    out << "  \"quarantined_lines\": " << quarantinedLines << ",\n";
    out << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const CellReport &c = cells[i];
        out << "    {\"workload\": \"" << jsonEscape(c.workload)
            << "\", \"scheme\": \"" << jsonEscape(c.scheme)
            << "\", \"status\": \"" << cellStatusName(c.status)
            << "\", \"attempts\": " << c.attempts;
        if (!c.reason.empty())
            out << ", \"reason\": \"" << jsonEscape(c.reason) << "\"";
        out << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    // Registry snapshot at report time: correlates the per-cell
    // outcomes above with process-wide cache/pool/search counters.
    out << "  \"metrics\": " << metrics::snapshotJson(1) << "\n";
    out << "}\n";
    return out.str();
}

bool
GridReport::write() const
{
    return atomicWriteFile(pathFor(gridId), toJson());
}

} // namespace harness
} // namespace valley
