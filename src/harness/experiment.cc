#include "harness/experiment.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/fault_inject.hh"
#include "common/metrics.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "common/trace_span.hh"
#include "harness/atomic_io.hh"
#include "harness/grid_journal.hh"
#include "harness/result_cache.hh"
#include "mapping/layout_registry.hh"
#include "mapping/mapper_registry.hh"
#include "search/searched_bim.hh"
#include "synth/registry.hh"
#include "workloads/workload_set.hh"

namespace valley {
namespace harness {

namespace {

/** Search options every searched-scheme grid cell uses. */
search::SearchOptions
cellSearchOptions(const SimConfig &config, std::uint64_t bim_seed)
{
    // Restarts stay serial here — grid cells already fan out over the
    // harness thread pool — and the search is deterministic in
    // (workload set, scale, layout, window, seed), so cells remain
    // bit-reproducible.
    search::SearchOptions so = search::defaultOptions(config.layout);
    so.seed = bim_seed;
    so.window = config.numSms;
    so.threads = 1;
    return so;
}

/**
 * Result-cache key of one cell. Searched matrices depend on the
 * search implementation, not just the seed, so their cells carry the
 * search version in the scheme slot; GBIM cells additionally carry
 * the joint set's canonical hash (the same workload simulates
 * differently under different sets). The layout identity is a
 * first-class key field so the same config name over two layout
 * presets can never collide.
 */
std::string
cellCacheKey(const SimConfig &config, const std::string &mapper_spec,
             const std::string &workload, std::uint64_t bim_seed,
             double scale, const workloads::WorkloadSet *joint_set)
{
    // Mapper specs key on their canonical form, like synth workload
    // specs: reordered parameters or redundant defaults hit the same
    // cells.
    const mapping::ResolvedMapperSpec resolved =
        mapping::resolveMapperSpec(mapper_spec);
    std::string scheme_id = resolved.canonical();
    const std::string &family = resolved.family().name;
    if (family == "sbim") {
        scheme_id += std::string("@") + search::kSearchVersion;
    } else if (family == "gbim") {
        const workloads::WorkloadSet set =
            joint_set ? *joint_set : workloads::WorkloadSet({workload});
        scheme_id += std::string("@") + search::kSearchVersion + "@" +
                     set.shortId();
    }
    // Synth specs key on their canonical form, so reordered keys or
    // redundant defaults hit the same cells (the identity guarantee
    // of synth/registry.hh).
    const std::string workload_key =
        synth::isSynthSpec(workload)
            ? synth::resolve(workload).canonical()
            : workload;
    // Free-form and spec-bearing fields are percent-escaped: a ','
    // (mapper/synth parameter lists), ';' (key field separator) or
    // '|' (journal line separator) inside one field can never
    // collide two different cells onto one identity.
    return cacheKey(workloads::escapeSpecField(config.name),
                    workloads::escapeSpecField(workload_key),
                    workloads::escapeSpecField(scheme_id), bim_seed,
                    scale, mapping::layoutIdentity(config.layout));
}

/** `GridOptions::checkpoint`, overridable by VALLEY_CHECKPOINT. */
bool
checkpointEnabled(const GridOptions &opts)
{
    if (opts.checkpoint)
        return true;
    const char *env = std::getenv("VALLEY_CHECKPOINT");
    return env && *env && std::string(env) != "0";
}

/**
 * Everything that makes two grids "the same grid" for resume
 * purposes. Cell keys alone already disambiguate cells, but hashing
 * the identity into the journal *path* keeps each grid's journal
 * self-contained (and lets an unrelated grid start fresh instead of
 * loading thousands of foreign records).
 */
std::string
gridIdentity(const GridOptions &opts,
             const workloads::WorkloadSet *joint)
{
    std::ostringstream out;
    out.precision(17);
    // Free-form fields (config name, workloads, the joint-set key —
    // which is itself escaped but re-escaped here for uniformity)
    // are percent-escaped so a ';' or ',' inside one of them cannot
    // make two different grids serialize to the same identity and
    // share a journal file.
    out << workloads::escapeSpecField(opts.config.name) << ';'
        << opts.bimSeed << ';' << opts.scale << ';';
    for (const auto &w : opts.workloads)
        out << workloads::escapeSpecField(w) << ',';
    out << ';';
    for (const auto &m : opts.mappers)
        out << workloads::escapeSpecField(m) << ',';
    out << ';' << mapping::layoutIdentity(opts.config.layout) << ';'
        << workloads::escapeSpecField(joint ? joint->key()
                                            : std::string());
    return out.str();
}

/** Simulate one workload under an already-built mapper. */
RunResult
simulateCell(const SimConfig &config, const AddressMapper &mapper,
             const std::string &workload, double scale)
{
    const auto wl = workloads::make(workload, scale);
    GpuSystem sim(config, mapper);
    return sim.run(*wl);
}

} // namespace

RunResult
runOne(const SimConfig &config, const std::string &mapper_spec,
       const std::string &workload, double scale,
       std::uint64_t bim_seed, const workloads::WorkloadSet *joint_set)
{
    const mapping::ResolvedMapperSpec resolved =
        mapping::resolveMapperSpec(mapper_spec);
    const mapping::MapperFamily &family = resolved.family();

    std::unique_ptr<AddressMapper> mapper;
    if (family.name == "sbim") {
        // Profile-driven searched mapping over this one workload's
        // trace planes: the size-1 set, named "SBIM" by default.
        mapper = search::setMapper(
            config.layout, workloads::WorkloadSet({workload}),
            cellSearchOptions(config, bim_seed), scale);
    } else if (family.name == "gbim") {
        // Global searched mapping: one BIM annealed jointly against
        // the whole set — the deployment story the per-workload SBIM
        // column is compared against. (Grid cells share the matrix
        // in memory via runGrid; this standalone path rebuilds it,
        // through the SBIM cache when enabled.) Named after the
        // *requested family*: a size-1 set would otherwise label the
        // cell's RunResult "SBIM".
        const workloads::WorkloadSet fallback({workload});
        mapper = search::setMapper(
            config.layout, joint_set ? *joint_set : fallback,
            cellSearchOptions(config, bim_seed), scale, "GBIM");
    } else if (family.needsProfiles) {
        throw std::invalid_argument(
            "runOne: " + resolved.canonical() +
            " requires workload profiles and has no search routing");
    } else {
        mapper = mapping::makeMapper(mapper_spec, config.layout,
                                     bim_seed);
    }
    return simulateCell(config, *mapper, workload, scale);
}

RunResult
runOne(const SimConfig &config, Scheme scheme,
       const std::string &workload, double scale,
       std::uint64_t bim_seed, const workloads::WorkloadSet *joint_set)
{
    return runOne(config, mapping::schemeSpec(scheme), workload, scale,
                  bim_seed, joint_set);
}

RunResult
runOneCached(const SimConfig &config, const std::string &mapper_spec,
             const std::string &workload, double scale,
             std::uint64_t bim_seed,
             const workloads::WorkloadSet *joint_set)
{
    const std::string key = cellCacheKey(config, mapper_spec, workload,
                                         bim_seed, scale, joint_set);
    if (auto hit = cacheLookup(key)) {
        hit->config = config.name;
        return *hit;
    }
    RunResult r = runOne(config, mapper_spec, workload, scale, bim_seed,
                         joint_set);
    cacheStore(key, r);
    return r;
}

RunResult
runOneCached(const SimConfig &config, Scheme scheme,
             const std::string &workload, double scale,
             std::uint64_t bim_seed,
             const workloads::WorkloadSet *joint_set)
{
    return runOneCached(config, mapping::schemeSpec(scheme), workload,
                        scale, bim_seed, joint_set);
}

Grid::Grid(GridOptions opts_, std::vector<std::vector<RunResult>> res,
           GridReport report)
    : opts(std::move(opts_)), results(std::move(res)),
      report_(std::move(report))
{
    // runGrid normalizes before construction; this keeps direct
    // constructions (tests, embedders) consistent too.
    normalizeGridAxes(opts);
}

std::size_t
Grid::wIndex(const std::string &workload) const
{
    for (std::size_t i = 0; i < opts.workloads.size(); ++i)
        if (opts.workloads[i] == workload)
            return i;
    throw std::out_of_range("grid: unknown workload " + workload);
}

std::size_t
Grid::sIndex(Scheme s) const
{
    return sIndex(mapping::schemeSpec(s));
}

std::size_t
Grid::sIndex(const std::string &mapper_spec) const
{
    const std::string canon = mapping::canonicalMapperSpec(mapper_spec);
    for (std::size_t i = 0; i < opts.mappers.size(); ++i)
        if (opts.mappers[i] == canon)
            return i;
    throw std::out_of_range("grid: mapper " + canon + " not in grid");
}

const RunResult &
Grid::at(const std::string &workload, Scheme s) const
{
    return results[wIndex(workload)][sIndex(s)];
}

const RunResult &
Grid::at(const std::string &workload,
         const std::string &mapper_spec) const
{
    return results[wIndex(workload)][sIndex(mapper_spec)];
}

double
Grid::speedup(const std::string &workload, Scheme s) const
{
    const RunResult &base = at(workload, Scheme::BASE);
    const RunResult &r = at(workload, s);
    return r.seconds > 0.0 ? base.seconds / r.seconds : 0.0;
}

double
Grid::speedup(const std::string &workload,
              const std::string &mapper_spec) const
{
    const RunResult &base = at(workload, Scheme::BASE);
    const RunResult &r = at(workload, mapper_spec);
    return r.seconds > 0.0 ? base.seconds / r.seconds : 0.0;
}

double
Grid::dramPowerNorm(const std::string &workload, Scheme s) const
{
    const double base = at(workload, Scheme::BASE).dramPower.totalW();
    const double v = at(workload, s).dramPower.totalW();
    return base > 0.0 ? v / base : 0.0;
}

double
Grid::systemPowerNorm(const std::string &workload, Scheme s) const
{
    const double base = at(workload, Scheme::BASE).systemPowerW;
    const double v = at(workload, s).systemPowerW;
    return base > 0.0 ? v / base : 0.0;
}

double
Grid::perfPerWattNorm(const std::string &workload, Scheme s) const
{
    const double base =
        at(workload, Scheme::BASE).performancePerWatt();
    const double v = at(workload, s).performancePerWatt();
    return base > 0.0 ? v / base : 0.0;
}

double
Grid::hmeanSpeedup(Scheme s) const
{
    std::vector<double> v;
    v.reserve(opts.workloads.size());
    for (const auto &w : opts.workloads)
        v.push_back(speedup(w, s));
    return harmonicMean(v);
}

double
Grid::mean(Scheme s,
           const std::function<double(const RunResult &)> &metric) const
{
    std::vector<double> v;
    v.reserve(opts.workloads.size());
    for (const auto &w : opts.workloads)
        v.push_back(metric(at(w, s)));
    return arithmeticMean(v);
}

double
Grid::meanDramPowerNorm(Scheme s) const
{
    std::vector<double> v;
    for (const auto &w : opts.workloads)
        v.push_back(dramPowerNorm(w, s));
    return arithmeticMean(v);
}

double
Grid::meanExecTimeNorm(Scheme s) const
{
    std::vector<double> v;
    for (const auto &w : opts.workloads) {
        const double sp = speedup(w, s);
        v.push_back(sp > 0.0 ? 1.0 / sp : 0.0);
    }
    return arithmeticMean(v);
}

double
Grid::meanSystemPowerNorm(Scheme s) const
{
    std::vector<double> v;
    for (const auto &w : opts.workloads)
        v.push_back(systemPowerNorm(w, s));
    return arithmeticMean(v);
}

double
Grid::hmeanPerfPerWattNorm(Scheme s) const
{
    std::vector<double> v;
    for (const auto &w : opts.workloads)
        v.push_back(perfPerWattNorm(w, s));
    return harmonicMean(v);
}

void
normalizeGridAxes(GridOptions &opts)
{
    if (opts.mappers.empty())
        for (Scheme s : opts.schemes)
            opts.mappers.push_back(mapping::schemeSpec(s));
    for (auto &m : opts.mappers)
        m = mapping::canonicalMapperSpec(m);
}

namespace {

/** One resolved entry of the grid's mapper axis. */
struct MapperAxisEntry
{
    std::string spec;  ///< canonical spec (cache/journal identity)
    std::string label; ///< family display name (reports, progress)
    bool gbim = false; ///< shares the grid's one joint searched BIM
};

std::vector<MapperAxisEntry>
resolveMapperAxis(const GridOptions &opts)
{
    std::vector<MapperAxisEntry> axis;
    axis.reserve(opts.mappers.size());
    for (const auto &m : opts.mappers) {
        const mapping::ResolvedMapperSpec r =
            mapping::resolveMapperSpec(m);
        axis.push_back(
            {m, r.family().displayName(r), r.family().name == "gbim"});
    }
    return axis;
}

} // namespace

Grid
runGrid(GridOptions opts)
{
    normalizeGridAxes(opts);
    const std::vector<MapperAxisEntry> axis = resolveMapperAxis(opts);

    // Every cell writes only its own preallocated slot, so the result
    // placement is deterministic under any scheduling order.
    std::vector<std::vector<RunResult>> results(
        opts.workloads.size(),
        std::vector<RunResult>(axis.size()));

    // One canonical joint set for every GBIM cell of this grid: the
    // explicit override, or the grid's own workload axis — "the best
    // single BIM for the workloads being compared". The searched
    // mapper is built lazily, at most once, and shared in memory
    // across cells (AddressMapper is immutable after construction),
    // so a cold parallel grid never races N identical annealing
    // searches — with or without the on-disk caches.
    std::unique_ptr<workloads::WorkloadSet> joint;
    if (std::any_of(axis.begin(), axis.end(),
                    [](const MapperAxisEntry &e) { return e.gbim; }))
        joint = std::make_unique<workloads::WorkloadSet>(
            opts.jointSet.empty() ? opts.workloads : opts.jointSet);
    std::unique_ptr<AddressMapper> gbim_mapper;
    std::once_flag gbim_once;
    const auto sharedGbim = [&]() -> const AddressMapper & {
        std::call_once(gbim_once, [&] {
            gbim_mapper = search::setMapper(
                opts.config.layout, *joint,
                cellSearchOptions(opts.config, opts.bimSeed),
                opts.scale, "GBIM");
        });
        return *gbim_mapper;
    };

    // Checkpoint journal: load once up front (the maps are then
    // read-only, so parallel cells need no lock), append one record
    // per finished cell. Resume = skip every journaled cell with its
    // recorded result — bit-identical because the journal round-trips
    // doubles exactly. Poisoned cells are skipped with their recorded
    // reason instead of being re-simulated.
    const bool checkpoint = checkpointEnabled(opts);
    const std::string identity = gridIdentity(opts, joint.get());
    std::unique_ptr<GridJournal> journal;
    JournalContents done_cells;
    if (checkpoint) {
        journal = std::make_unique<GridJournal>(
            GridJournal::pathFor(identity));
        done_cells = journal->loadAll();
    }

    // The grid's cancellation scope: a child of the caller's token
    // (so external SIGINT/service cancellation propagates) carrying
    // this grid's own wall-clock deadline, when one is configured.
    // Checked at cell boundaries only — a started cell always runs
    // to completion, keeping journaled results deterministic.
    CancelToken token =
        opts.cancel ? opts.cancel->child() : CancelToken();
    std::uint64_t deadline_ms = opts.deadlineMs;
    if (deadline_ms == 0) {
        if (const auto env = CancelToken::envDeadlineMs())
            deadline_ms = static_cast<std::uint64_t>(env->count());
    }
    if (deadline_ms != 0)
        token.setDeadline(Deadline::after(
            std::chrono::milliseconds(deadline_ms)));

    const unsigned max_attempts = std::max(1u, opts.maxAttempts);
    const std::size_t cells = opts.workloads.size() * axis.size();
    std::atomic<std::size_t> cells_done{0};
    std::atomic<std::size_t> cells_resumed{0};

    // Registry mirrors of the progress counters above: one source of
    // truth per event site (each atomic bump below has exactly one
    // matching registry bump), exported via --metrics / grid_report.
    metrics::Counter &m_done = metrics::counter("grid.cells_done");
    metrics::Counter &m_resumed =
        metrics::counter("grid.cells_resumed");
    metrics::Counter &m_retried = metrics::counter("grid.cells_retried");
    metrics::Counter &m_retries = metrics::counter("grid.cell_retries");
    metrics::Counter &m_poisoned =
        metrics::counter("grid.cells_poisoned");
    metrics::Histogram &m_cell_us = metrics::histogram("grid.cell_us");

    // Per-cell outcome slots for the report: like `results`, each
    // cell writes only its own entry, so no lock is needed.
    std::vector<CellStatus> status(cells, CellStatus::NotRun);
    std::vector<unsigned> attempts_used(cells, 0);
    std::vector<std::string> fail_reason(cells);

    const auto runCell = [&](std::size_t wi, std::size_t si) {
        const std::string &w = opts.workloads[wi];
        const MapperAxisEntry &m = axis[si];
        const std::size_t idx = wi * axis.size() + si;
        trace::Span cell_span(
            trace::enabled() ? "cell " + w + "/" + m.label
                             : std::string(),
            "grid");
        const std::string key =
            (checkpoint || opts.useCache)
                ? cellCacheKey(opts.config, m.spec, w, opts.bimSeed,
                               opts.scale, joint.get())
                : std::string();
        if (checkpoint) {
            const auto it = done_cells.cells.find(key);
            if (it != done_cells.cells.end()) {
                RunResult r = it->second;
                r.config = opts.config.name;
                results[wi][si] = std::move(r);
                status[idx] = CellStatus::Resumed;
                cells_resumed.fetch_add(1,
                                        std::memory_order_relaxed);
                m_resumed.inc();
                m_done.inc();
                const std::size_t d = cells_done.fetch_add(1) + 1;
                if (opts.progress)
                    std::fprintf(stderr,
                                 "[grid] %-6s %-5s resumed from "
                                 "journal (%zu/%zu)\n",
                                 w.c_str(), m.label.c_str(), d,
                                 cells);
                return;
            }
            const auto pit = done_cells.poisoned.find(key);
            if (pit != done_cells.poisoned.end()) {
                // Quarantined by an earlier run: one pathological
                // cell costs one skip per sweep, not a fresh crash.
                status[idx] = CellStatus::Poisoned;
                fail_reason[idx] = pit->second;
                m_poisoned.inc();
                m_done.inc();
                cells_done.fetch_add(1);
                if (opts.progress)
                    std::fprintf(stderr,
                                 "[grid] %-6s %-5s skipped: poisoned "
                                 "by earlier run (%s)\n",
                                 w.c_str(), m.label.c_str(),
                                 pit->second.c_str());
                return;
            }
        }
        if (token.cancelled()) {
            // Deadline/cancellation fired before this cell started:
            // leave it NotRun (classified DeadlineMissed below) so
            // the journal never records a rushed or partial result.
            return;
        }
        if (opts.progress)
            std::fprintf(stderr, "[grid] %-6s %-5s %s...\n", w.c_str(),
                         m.label.c_str(),
                         opts.config.name.c_str());
        metrics::ScopedTimer cell_timer(m_cell_us);
        for (unsigned attempt = 1;; ++attempt) {
            attempts_used[idx] = attempt;
            try {
                // Fault-injection site: counts per simulation
                // *attempt* and skips resumed cells, so a resumed run
                // with the same VALLEY_FAULT_INJECT spec dies N *new*
                // attempts further in, not at the same spot forever.
                fault::maybeInject("grid_cell");
                if (m.gbim && joint) {
                    // GBIM cells simulate under the one shared
                    // matrix; the result cache still short-circuits
                    // repeat grids (and, on a full hit, the search
                    // never runs at all).
                    bool hit_cache = false;
                    if (opts.useCache) {
                        if (auto hit = cacheLookup(key)) {
                            hit->config = opts.config.name;
                            results[wi][si] = *hit;
                            hit_cache = true;
                        }
                    }
                    if (!hit_cache) {
                        results[wi][si] = simulateCell(
                            opts.config, sharedGbim(), w, opts.scale);
                        if (opts.useCache)
                            cacheStore(key, results[wi][si]);
                    }
                } else {
                    results[wi][si] =
                        opts.useCache
                            ? runOneCached(opts.config, m.spec, w,
                                           opts.scale, opts.bimSeed,
                                           joint.get())
                            : runOne(opts.config, m.spec, w, opts.scale,
                                     opts.bimSeed, joint.get());
                }
                if (checkpoint)
                    journal->record(key, results[wi][si]);
                if (attempt > 1) {
                    status[idx] = CellStatus::Retried;
                    m_retried.inc();
                } else {
                    status[idx] = CellStatus::Ok;
                }
                break;
            } catch (const std::exception &e) {
                if (attempt < max_attempts && !token.cancelled()) {
                    m_retries.inc();
                    // Deterministic exponential backoff: delays only,
                    // never feeds into any computed result.
                    if (opts.retryBackoffMs != 0)
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(
                                static_cast<std::uint64_t>(
                                    opts.retryBackoffMs)
                                << (attempt - 1)));
                    if (opts.progress)
                        std::fprintf(stderr,
                                     "[grid] %-6s %-5s attempt %u "
                                     "failed (%s), retrying\n",
                                     w.c_str(), m.label.c_str(),
                                     attempt, e.what());
                    continue;
                }
                if (!opts.poison)
                    throw; // historical contract: first failure aborts
                // Crash-consistency invariant 5: quarantine the cell
                // in the journal BEFORE surfacing the failure, so a
                // kill right here cannot lose the decision and make
                // the next run crash on the same cell again.
                if (checkpoint)
                    journal->recordPoisoned(key, e.what());
                status[idx] = CellStatus::Poisoned;
                m_poisoned.inc();
                fail_reason[idx] = e.what();
                if (opts.progress)
                    std::fprintf(stderr,
                                 "[grid] %-6s %-5s poisoned after %u "
                                 "attempt(s): %s\n",
                                 w.c_str(), m.label.c_str(),
                                 attempt, e.what());
                break;
            }
        }
        m_done.inc();
        const std::size_t d = cells_done.fetch_add(1) + 1;
        if (opts.progress)
            std::fprintf(stderr, "[grid] %zu/%zu cells done\n", d,
                         cells);
    };

    const unsigned threads = opts.threads == 0
                                 ? ThreadPool::defaultThreads()
                                 : opts.threads;
    std::uint64_t steals = 0;
    if (threads <= 1 || cells <= 1) {
        for (std::size_t wi = 0; wi < opts.workloads.size(); ++wi)
            for (std::size_t si = 0; si < axis.size(); ++si)
                runCell(wi, si);
    } else {
        ThreadPool pool(
            static_cast<unsigned>(std::min<std::size_t>(threads,
                                                        cells)));
        for (std::size_t wi = 0; wi < opts.workloads.size(); ++wi)
            for (std::size_t si = 0; si < axis.size(); ++si)
                pool.submit([&runCell, wi, si] { runCell(wi, si); });
        // The token lets the pool skip (claim-and-retire) cells that
        // have not started when the deadline fires; runCell's own
        // cancelled() check classifies them below.
        pool.run(&token);
        steals = pool.stealCount();
    }

    // Classify cells the deadline prevented from starting.
    GridReport report;
    report.gridId = gridIdHex(identity);
    report.steals = steals;
    report.quarantinedLines = quarantinedLineCount();
    report.deadlineHit = token.cancelled();
    report.cells.reserve(cells);
    for (std::size_t wi = 0; wi < opts.workloads.size(); ++wi)
        for (std::size_t si = 0; si < axis.size(); ++si) {
            const std::size_t idx = wi * axis.size() + si;
            CellReport c;
            c.workload = opts.workloads[wi];
            c.scheme = axis[si].label;
            c.status = status[idx] == CellStatus::NotRun
                           ? CellStatus::DeadlineMissed
                           : status[idx];
            c.attempts = attempts_used[idx];
            c.reason = fail_reason[idx];
            report.cells.push_back(std::move(c));
        }
    report.finalize();
    if (report.deadlineMissed != 0)
        metrics::counter("grid.cells_deadline_missed")
            .add(report.deadlineMissed);
    if (report.deadlineHit)
        metrics::counter("grid.deadline_hits").inc();
    if (opts.report && !report.write())
        std::fprintf(stderr, "[grid] warning: failed to write %s\n",
                     GridReport::pathFor(report.gridId).c_str());

    if (opts.progress)
        std::fprintf(stderr,
                     "[grid] done: %zu/%zu cells (%zu resumed, "
                     "%zu retried, %zu poisoned, %zu deadline-missed, "
                     "%llu stolen, %llu cache lines quarantined)\n",
                     cells_done.load(), cells, cells_resumed.load(),
                     report.retried, report.poisoned,
                     report.deadlineMissed,
                     static_cast<unsigned long long>(steals),
                     static_cast<unsigned long long>(
                         quarantinedLineCount()));
    return Grid(std::move(opts), std::move(results),
                std::move(report));
}

std::vector<LayoutGrid>
runGrids(GridOptions opts)
{
    normalizeGridAxes(opts);
    const std::vector<std::string> layouts = opts.layouts;
    opts.layouts.clear();

    std::vector<LayoutGrid> out;
    if (layouts.empty()) {
        const std::string id =
            mapping::layoutIdentity(opts.config.layout);
        out.push_back({id, runGrid(std::move(opts))});
        return out;
    }
    for (const auto &spec : layouts) {
        GridOptions o = opts;
        // makeLayout throws with the registered-key list on an
        // unknown spec — before any cell has run.
        o.config.layout = mapping::makeLayout(spec);
        const std::string id = mapping::layoutIdentity(o.config.layout);
        if (opts.progress)
            std::fprintf(stderr, "[grid] layout %s (%s)\n", id.c_str(),
                         o.config.layout.name.c_str());
        out.push_back({id, runGrid(std::move(o))});
    }
    return out;
}

} // namespace harness
} // namespace valley
