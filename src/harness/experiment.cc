#include "harness/experiment.hh"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "harness/result_cache.hh"
#include "search/searched_bim.hh"
#include "synth/registry.hh"

namespace valley {
namespace harness {

RunResult
runOne(const SimConfig &config, Scheme scheme,
       const std::string &workload, double scale,
       std::uint64_t bim_seed)
{
    const auto wl = workloads::make(workload, scale);
    std::unique_ptr<AddressMapper> mapper;
    if (scheme == Scheme::SBIM) {
        // Profile-driven searched mapping: run the BIM search over
        // this workload's trace planes. Restarts stay serial here —
        // grid cells already fan out over the harness thread pool —
        // and the search is deterministic in (workload, scale,
        // layout, window, seed), so cells remain bit-reproducible.
        search::SearchOptions so = search::defaultOptions(config.layout);
        so.seed = bim_seed;
        so.window = config.numSms;
        so.threads = 1;
        mapper = search::searchedMapper(config.layout, *wl, so, scale);
    } else {
        mapper = mapping::makeScheme(scheme, config.layout, bim_seed);
    }
    GpuSystem sim(config, *mapper);
    return sim.run(*wl);
}

RunResult
runOneCached(const SimConfig &config, Scheme scheme,
             const std::string &workload, double scale,
             std::uint64_t bim_seed)
{
    // SBIM matrices depend on the search implementation, not just the
    // seed, so its cells carry the search version in the scheme slot.
    const std::string scheme_id =
        scheme == Scheme::SBIM
            ? schemeName(scheme) + "@" + search::kSearchVersion
            : schemeName(scheme);
    // Synth specs key on their canonical form, so reordered keys or
    // redundant defaults hit the same cells (the identity guarantee
    // of synth/registry.hh).
    const std::string workload_key =
        synth::isSynthSpec(workload)
            ? synth::resolve(workload).canonical()
            : workload;
    const std::string key =
        cacheKey(config.name, workload_key, scheme_id, bim_seed, scale);
    if (auto hit = cacheLookup(key)) {
        hit->config = config.name;
        return *hit;
    }
    RunResult r = runOne(config, scheme, workload, scale, bim_seed);
    cacheStore(key, r);
    return r;
}

Grid::Grid(GridOptions opts_, std::vector<std::vector<RunResult>> res)
    : opts(std::move(opts_)), results(std::move(res))
{
}

std::size_t
Grid::wIndex(const std::string &workload) const
{
    for (std::size_t i = 0; i < opts.workloads.size(); ++i)
        if (opts.workloads[i] == workload)
            return i;
    throw std::out_of_range("grid: unknown workload " + workload);
}

std::size_t
Grid::sIndex(Scheme s) const
{
    for (std::size_t i = 0; i < opts.schemes.size(); ++i)
        if (opts.schemes[i] == s)
            return i;
    throw std::out_of_range("grid: scheme not in grid");
}

const RunResult &
Grid::at(const std::string &workload, Scheme s) const
{
    return results[wIndex(workload)][sIndex(s)];
}

double
Grid::speedup(const std::string &workload, Scheme s) const
{
    const RunResult &base = at(workload, Scheme::BASE);
    const RunResult &r = at(workload, s);
    return r.seconds > 0.0 ? base.seconds / r.seconds : 0.0;
}

double
Grid::dramPowerNorm(const std::string &workload, Scheme s) const
{
    const double base = at(workload, Scheme::BASE).dramPower.totalW();
    const double v = at(workload, s).dramPower.totalW();
    return base > 0.0 ? v / base : 0.0;
}

double
Grid::systemPowerNorm(const std::string &workload, Scheme s) const
{
    const double base = at(workload, Scheme::BASE).systemPowerW;
    const double v = at(workload, s).systemPowerW;
    return base > 0.0 ? v / base : 0.0;
}

double
Grid::perfPerWattNorm(const std::string &workload, Scheme s) const
{
    const double base =
        at(workload, Scheme::BASE).performancePerWatt();
    const double v = at(workload, s).performancePerWatt();
    return base > 0.0 ? v / base : 0.0;
}

double
Grid::hmeanSpeedup(Scheme s) const
{
    std::vector<double> v;
    v.reserve(opts.workloads.size());
    for (const auto &w : opts.workloads)
        v.push_back(speedup(w, s));
    return harmonicMean(v);
}

double
Grid::mean(Scheme s,
           const std::function<double(const RunResult &)> &metric) const
{
    std::vector<double> v;
    v.reserve(opts.workloads.size());
    for (const auto &w : opts.workloads)
        v.push_back(metric(at(w, s)));
    return arithmeticMean(v);
}

double
Grid::meanDramPowerNorm(Scheme s) const
{
    std::vector<double> v;
    for (const auto &w : opts.workloads)
        v.push_back(dramPowerNorm(w, s));
    return arithmeticMean(v);
}

double
Grid::meanExecTimeNorm(Scheme s) const
{
    std::vector<double> v;
    for (const auto &w : opts.workloads) {
        const double sp = speedup(w, s);
        v.push_back(sp > 0.0 ? 1.0 / sp : 0.0);
    }
    return arithmeticMean(v);
}

double
Grid::meanSystemPowerNorm(Scheme s) const
{
    std::vector<double> v;
    for (const auto &w : opts.workloads)
        v.push_back(systemPowerNorm(w, s));
    return arithmeticMean(v);
}

double
Grid::hmeanPerfPerWattNorm(Scheme s) const
{
    std::vector<double> v;
    for (const auto &w : opts.workloads)
        v.push_back(perfPerWattNorm(w, s));
    return harmonicMean(v);
}

Grid
runGrid(GridOptions opts)
{
    // Every cell writes only its own preallocated slot, so the result
    // placement is deterministic under any scheduling order.
    std::vector<std::vector<RunResult>> results(
        opts.workloads.size(),
        std::vector<RunResult>(opts.schemes.size()));

    const auto runCell = [&](std::size_t wi, std::size_t si) {
        const std::string &w = opts.workloads[wi];
        const Scheme s = opts.schemes[si];
        if (opts.progress)
            std::fprintf(stderr, "[grid] %-6s %-5s %s...\n", w.c_str(),
                         schemeName(s).c_str(),
                         opts.config.name.c_str());
        results[wi][si] =
            opts.useCache
                ? runOneCached(opts.config, s, w, opts.scale,
                               opts.bimSeed)
                : runOne(opts.config, s, w, opts.scale, opts.bimSeed);
    };

    const std::size_t cells =
        opts.workloads.size() * opts.schemes.size();
    const unsigned threads = opts.threads == 0
                                 ? ThreadPool::defaultThreads()
                                 : opts.threads;
    if (threads <= 1 || cells <= 1) {
        for (std::size_t wi = 0; wi < opts.workloads.size(); ++wi)
            for (std::size_t si = 0; si < opts.schemes.size(); ++si)
                runCell(wi, si);
    } else {
        ThreadPool pool(
            static_cast<unsigned>(std::min<std::size_t>(threads,
                                                        cells)));
        for (std::size_t wi = 0; wi < opts.workloads.size(); ++wi)
            for (std::size_t si = 0; si < opts.schemes.size(); ++si)
                pool.submit([&runCell, wi, si] { runCell(wi, si); });
        pool.run();
    }
    return Grid(std::move(opts), std::move(results));
}

} // namespace harness
} // namespace valley
