/**
 * @file
 * Crash-consistent file primitives shared by every on-disk cache and
 * the grid journal.
 *
 * Three failure modes motivated this layer (ISSUE 6, "mega-grid
 * resilience"): two bench binaries appending to the same CSV can
 * interleave buffered writes and tear a line; a process killed
 * mid-append leaves a truncated tail; and a single corrupt line used
 * to poison — or abort — every later run that loaded the file. The
 * fixes compose:
 *
 *  - `atomicAppend` writes a whole record with ONE O_APPEND write(2),
 *    so concurrent appenders can interleave only at record
 *    granularity, never inside a record;
 *  - `atomicWriteFile` replaces a file via temp-file + rename(2), so
 *    readers observe either the old or the new contents, never a mix;
 *  - every record carries an FNV-1a checksum
 *    (`checksummedRecord`/`parseChecksummedRecord`), so a torn or
 *    bit-rotted line is *detectable*;
 *  - `loadChecksummedRecords` skips-and-quarantines bad lines (moved
 *    to `cacheDir()/quarantine/<basename>`, counted, logged) instead
 *    of propagating garbage or dying — the cache degrades to a miss,
 *    and the next run repopulates it.
 */

#ifndef VALLEY_HARNESS_ATOMIC_IO_HH
#define VALLEY_HARNESS_ATOMIC_IO_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace valley {
namespace harness {

/**
 * Append `data` to `path` with a single O_APPEND write, creating the
 * parent directory if needed. POSIX O_APPEND makes the seek+write
 * atomic, so two processes appending whole records cannot interleave
 * *within* a record (the torn-line race the caches used to have).
 * The append additionally holds an exclusive flock on a sidecar
 * lock dotfile (`.<basename>.lock`, invisible to data-file directory
 * scans), shared with `loadChecksummedRecords`, so a
 * record can never be appended in the window between that loader's
 * read pass and its quarantine rewrite (where it would be silently
 * dropped). Best-effort: returns false on I/O failure (a lost append
 * only loses memoization, never correctness).
 *
 * This is also the `cache_write` fault-injection site
 * (`fault::maybeInject`), so tests and `bench/resume_smoke` can kill
 * a run at the Nth persisted record deterministically.
 */
bool atomicAppend(const std::string &path, std::string_view data);

/**
 * Replace `path` with `contents` atomically: write a temp file next
 * to it, flush, then rename(2) over the target. Readers see the old
 * or the new file, never a prefix. Returns false on failure (the
 * original file is left untouched).
 */
bool atomicWriteFile(const std::string &path, std::string_view contents);

/**
 * One checksummed record line: `key|payload|c<16 hex digits>\n`, the
 * checksum being FNV-1a over `key|payload`. `key` must not contain
 * '|', '\n', '\r' or NUL (cache keys are built escaped — see
 * `workloads::escapeSpecField`); `payload` must not contain '\n',
 * '\r' or NUL. The invariant is enforced unconditionally (not just
 * in debug builds): a violating key/payload returns an empty string,
 * so the caller's append degrades to a no-op instead of writing a
 * line that would quarantine on the next load.
 */
std::string checksummedRecord(std::string_view key,
                              std::string_view payload);

/**
 * Parse and verify one record line (without trailing newline).
 * Returns (key, payload) or nullopt if the line is torn, checksum
 * fails, the checksum field is malformed, or the line embeds NULs.
 */
std::optional<std::pair<std::string, std::string>>
parseChecksummedRecord(std::string_view line);

/** Outcome counters of one `loadChecksummedRecords` pass. */
struct LoadStats
{
    std::size_t accepted = 0;     ///< records handed to the sink
    std::size_t quarantined = 0;  ///< corrupt lines moved aside
    std::size_t staleVersion = 0; ///< other-schema lines (kept, unused)
};

/**
 * Load every record of `path`, tolerating corruption.
 *
 * For each non-empty line: a key whose version prefix differs from
 * `version_prefix` is a *stale* line — skipped silently and preserved
 * (older binaries may still read it). A current-version line must
 * parse and checksum-verify, and `accept(key, payload)` must return
 * true (deserialization success); otherwise the line is corrupt.
 *
 * If any corrupt lines were found they are appended to
 * `cacheDir()/quarantine/<basename of path>` (atomicAppend), the file
 * is rewritten without them (atomicWriteFile — the "move" is
 * all-or-nothing), and one summary line is logged to stderr. The
 * whole read+rewrite runs under the sidecar flock shared with
 * `atomicAppend`, so records appended by concurrent processes or
 * threads are never lost to the rewrite. A missing file is simply
 * zero records.
 */
LoadStats loadChecksummedRecords(
    const std::string &path, std::string_view version_prefix,
    const std::function<bool(const std::string &key,
                             const std::string &payload)> &accept);

/**
 * Process-wide count of lines quarantined by `loadChecksummedRecords`
 * since start — the observability counter the robustness tests (and
 * grid progress logging) read.
 */
std::uint64_t quarantinedLineCount();

/**
 * Remove the `.<basename>.lock` sidecar of `path` if it is *stale* —
 * present but not flock-held by any live process (the kernel drops
 * flocks on process death, so a kill can leave the dotfile behind but
 * never a held lock). Detection is a non-blocking flock probe: a live
 * holder leaves the file untouched. `loadChecksummedRecords` calls
 * this at every cache open; it is exposed for tests and tools.
 * Returns true if a stale sidecar was removed. Safe against
 * concurrent lockers: the unlink happens while holding the probe
 * lock, and `FileLock` acquisition verifies the locked inode is still
 * the one on disk (retrying otherwise).
 */
bool cleanStaleLock(const std::string &path);

} // namespace harness
} // namespace valley

#endif // VALLEY_HARNESS_ATOMIC_IO_HH
