/**
 * @file
 * On-disk memoization of simulation results.
 *
 * The paper's figures 11-17 all consume the same 10-workload x
 * 6-scheme grid; the bench binaries are separate executables, so the
 * first one to run persists each RunResult into a CSV cache under
 * `cacheDir()` (a `cache/` directory next to the working directory by
 * default; run artifacts never land in the repo root). Set
 * VALLEY_CACHE=0 to force fresh simulation and VALLEY_CACHE_DIR to
 * relocate the directory; delete the file after changing simulator or
 * workload code (the cache key includes a schema version that is
 * bumped with behavioral changes).
 */

#ifndef VALLEY_HARNESS_RESULT_CACHE_HH
#define VALLEY_HARNESS_RESULT_CACHE_HH

#include <optional>
#include <string>

#include "gpu/run_result.hh"

namespace valley {
namespace harness {

/** Cache schema/behavior version; bump on simulator changes. */
extern const char *kResultCacheVersion;

/**
 * Directory holding every on-disk cache file: $VALLEY_CACHE_DIR if
 * set, else "cache" relative to the working directory. Created on
 * first store; gitignored.
 */
std::string cacheDir();

/** Result cache file path (inside `cacheDir()`). */
std::string resultCachePath();

/** True unless VALLEY_CACHE=0 is set in the environment. */
bool cacheEnabled();

/** Unique key of one run. */
std::string cacheKey(const std::string &config_name,
                     const std::string &workload,
                     const std::string &scheme, std::uint64_t seed,
                     double scale);

/** Look up a cached result (loads the file on first use). */
std::optional<RunResult> cacheLookup(const std::string &key);

/** Persist a result (no-op when caching is disabled). */
void cacheStore(const std::string &key, const RunResult &r);

} // namespace harness
} // namespace valley

#endif // VALLEY_HARNESS_RESULT_CACHE_HH
