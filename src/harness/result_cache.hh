/**
 * @file
 * On-disk memoization of simulation results.
 *
 * The paper's figures 11-17 all consume the same 10-workload x
 * 6-scheme grid; the bench binaries are separate executables, so the
 * first one to run persists each RunResult into a CSV cache in the
 * working directory and later benches reuse it. Set VALLEY_CACHE=0 to
 * force fresh simulation; delete the file after changing simulator or
 * workload code (the cache key includes a schema version that is
 * bumped with behavioral changes).
 */

#ifndef VALLEY_HARNESS_RESULT_CACHE_HH
#define VALLEY_HARNESS_RESULT_CACHE_HH

#include <optional>
#include <string>

#include "gpu/run_result.hh"

namespace valley {
namespace harness {

/** Cache schema/behavior version; bump on simulator changes. */
extern const char *kResultCacheVersion;

/** Cache file used by the bench binaries. */
extern const char *kResultCacheFile;

/** True unless VALLEY_CACHE=0 is set in the environment. */
bool cacheEnabled();

/** Unique key of one run. */
std::string cacheKey(const std::string &config_name,
                     const std::string &workload,
                     const std::string &scheme, std::uint64_t seed,
                     double scale);

/** Look up a cached result (loads the file on first use). */
std::optional<RunResult> cacheLookup(const std::string &key);

/** Persist a result (no-op when caching is disabled). */
void cacheStore(const std::string &key, const RunResult &r);

} // namespace harness
} // namespace valley

#endif // VALLEY_HARNESS_RESULT_CACHE_HH
