/**
 * @file
 * On-disk memoization of simulation results.
 *
 * The paper's figures 11-17 all consume the same 10-workload x
 * 6-scheme grid; the bench binaries are separate executables, so the
 * first one to run persists each RunResult into a CSV cache under
 * `cacheDir()` (a `cache/` directory next to the working directory by
 * default; run artifacts never land in the repo root). Set
 * VALLEY_CACHE=0 to force fresh simulation and VALLEY_CACHE_DIR to
 * relocate the directory; delete the file after changing simulator or
 * workload code (the cache key includes a schema version that is
 * bumped with behavioral changes).
 */

#ifndef VALLEY_HARNESS_RESULT_CACHE_HH
#define VALLEY_HARNESS_RESULT_CACHE_HH

#include <optional>
#include <string>

#include "gpu/run_result.hh"

namespace valley {
namespace harness {

/** Cache schema/behavior version; bump on simulator changes. */
extern const char *kResultCacheVersion;

/**
 * Directory holding every on-disk cache file: $VALLEY_CACHE_DIR if
 * set, else "cache" relative to the working directory. Created on
 * first store; gitignored.
 */
std::string cacheDir();

/** Result cache file path (inside `cacheDir()`). */
std::string resultCachePath();

/** True unless VALLEY_CACHE=0 is set in the environment. */
bool cacheEnabled();

/**
 * Unique key of one run. Free-form fields must be percent-escaped by
 * the caller (`workloads::escapeSpecField`) — ';' separates the key
 * fields. `layout` is the layout identity
 * (`mapping::layoutIdentity`); the default keeps legacy five-field
 * call sites compiling with an empty layout slot.
 */
std::string cacheKey(const std::string &config_name,
                     const std::string &workload,
                     const std::string &scheme, std::uint64_t seed,
                     double scale, const std::string &layout = "");

/** Look up a cached result (loads the file on first use). */
std::optional<RunResult> cacheLookup(const std::string &key);

/** Persist a result (no-op when caching is disabled). */
void cacheStore(const std::string &key, const RunResult &r);

/**
 * Round-trip-exact text serialization of a RunResult (doubles at
 * max_digits10), shared by the result cache and the grid journal so
 * a resumed cell is byte-identical to a freshly simulated one.
 * `RunResult::config` is NOT serialized — both consumers restamp it
 * from the active SimConfig on lookup.
 */
std::string serializeResult(const RunResult &r);

/** Inverse of `serializeResult`; nullopt on any malformed field. */
std::optional<RunResult> deserializeResult(const std::string &line);

/**
 * Drop the in-memory result cache and forget that the file was
 * loaded, so the next lookup re-reads disk. Testing hook only — the
 * cache-robustness tests use it to exercise corrupt-file loads
 * repeatedly in one process.
 */
void resultCacheResetForTesting();

} // namespace harness
} // namespace valley

#endif // VALLEY_HARNESS_RESULT_CACHE_HH
