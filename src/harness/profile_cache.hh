/**
 * @file
 * On-disk memoization of entropy profiles, mirroring the simulation
 * result cache.
 *
 * Fig. 5 profiles all sixteen benchmarks and Fig. 10 profiles MT
 * under every scheme; any profile-driven BIM search re-reads the same
 * profiles many times over. Profiles are deterministic functions of
 * (workload, mapper, window, bits, metric, scale), so the first bench
 * to compute one persists it to a CSV under `harness::cacheDir()`
 * (VALLEY_CACHE_DIR-configurable, "cache/" by default) and later runs
 * reuse it. Shares the VALLEY_CACHE=0 escape hatch and the sharded
 * in-memory map design with `result_cache` (the two caches use
 * separate files and version strings).
 */

#ifndef VALLEY_HARNESS_PROFILE_CACHE_HH
#define VALLEY_HARNESS_PROFILE_CACHE_HH

#include <optional>
#include <string>

#include "workloads/profiler.hh"

namespace valley {
namespace harness {

/** Profile cache schema/behavior version; bump on metric changes. */
extern const char *kProfileCacheVersion;

/** Profile cache file path (inside `harness::cacheDir()`). */
std::string profileCachePath();

/**
 * Unique key of one profile. `mapper_id` must uniquely identify the
 * mapper applied before accumulation (e.g. scheme name plus BIM
 * seed); use "" for no mapper.
 */
std::string profileCacheKey(const std::string &workload,
                            const std::string &mapper_id,
                            unsigned window, unsigned nbits,
                            EntropyMetric metric, double scale);

/** Look up a cached profile (loads the file on first use). */
std::optional<EntropyProfile> profileCacheLookup(
    const std::string &key);

/** Persist a profile (no-op when caching is disabled). */
void profileCacheStore(const std::string &key,
                       const EntropyProfile &p);

/**
 * Profile a workload through the cache: lookup by
 * (workload abbreviation, mapper_id, opts, scale), compute with
 * `workloads::profileWorkload` on a miss, store, return. Cache hits
 * round-trip doubles at full precision, so a hit is bit-identical to
 * the original computation.
 */
EntropyProfile profileWorkloadCached(
    const Workload &workload, const workloads::ProfileOptions &opts,
    double scale, const std::string &mapper_id = "");

/**
 * Drop the in-memory profile cache and forget that the file was
 * loaded (next lookup re-reads disk). Testing hook only.
 */
void profileCacheResetForTesting();

} // namespace harness
} // namespace valley

#endif // VALLEY_HARNESS_PROFILE_CACHE_HH
