/**
 * @file
 * Process-level crash-restart supervisor: the outermost ring of the
 * self-healing execution stack (`tools/valley_grid --supervise`).
 *
 * In-process machinery — retries, poisoning, cancellation — cannot
 * survive the process itself dying: a SIGKILL, an `_Exit` in a
 * dependency, an OOM kill. The supervisor closes that gap with the
 * classic fork/exec/waitpid loop: run the grid as a child process,
 * and when the child is lost to a crash, re-exec it. Because the
 * child checkpoints every finished cell to the grid journal
 * (`--supervise` forces `--checkpoint` on), each incarnation resumes
 * bit-identically where the last one died — the CI drill "inject a
 * kill at cell k, supervise, compare against the fault-free grid"
 * passes with zero human intervention.
 *
 * Restart policy:
 *
 *  - a child terminated by ANY signal (SIGKILL included) is
 *    restarted — signals are how crashes look to a parent;
 *  - a child exiting with a code in `noRestartExits` is *final*:
 *    success, usage errors, degraded-but-complete grids, and
 *    SIGINT-style interruption are outcomes, not crashes — rerunning
 *    cannot change them (a deterministically failing cell is the
 *    retry/poison layer's job, not ours);
 *  - every other exit code (e.g. the fault injector's `_Exit(42)`)
 *    is treated as a crash and restarted;
 *  - restarts are budgeted (`maxRestarts`) with exponential backoff
 *    (`backoffMs`, doubling, capped) so a hard crash loop degrades
 *    to a clean `exhausted` report instead of spinning forever.
 */

#ifndef VALLEY_HARNESS_SUPERVISOR_HH
#define VALLEY_HARNESS_SUPERVISOR_HH

#include <string>
#include <vector>

namespace valley {
namespace harness {

/** Restart policy knobs. */
struct SupervisorOptions
{
    /** Crash restarts before giving up (`exhausted`). */
    unsigned maxRestarts = 16;

    /**
     * Backoff before restart k (1-based): `backoffMs << (k-1)` ms,
     * capped at 5000 ms. 0 disables the sleep (tests, CI drills).
     */
    unsigned backoffMs = 100;

    /**
     * Child exit codes that end supervision immediately (the child's
     * code becomes the outcome). Defaults match `valley_grid`'s
     * contract: 0 ok, 1 usage, 2 usage, 3 grid failure (deterministic
     * — a rerun reproduces it), 4 degraded-but-complete, 130
     * interrupted.
     */
    std::vector<int> noRestartExits = {0, 1, 2, 3, 4, 130};

    bool log = true; ///< one stderr line per restart decision
};

/** What supervision ended with. */
struct SuperviseOutcome
{
    /**
     * Final child termination: the exit code, or 128+signal for a
     * signaled child (only possible when `exhausted`).
     */
    int exitCode = 0;
    unsigned restarts = 0; ///< crash restarts performed
    /** Budget spent while the child still kept crashing. */
    bool exhausted = false;
};

/**
 * Run `child_argv` (argv[0] = executable path) under crash-restart
 * supervision per `opts`. Blocks until the child reaches a final
 * outcome or the restart budget is exhausted. fork/exec failures
 * count as crashes against the same budget.
 */
SuperviseOutcome supervise(const std::vector<std::string> &child_argv,
                           const SupervisorOptions &opts = {});

} // namespace harness
} // namespace valley

#endif // VALLEY_HARNESS_SUPERVISOR_HH
