#include "harness/profile_cache.hh"

#include <array>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "harness/result_cache.hh"

namespace valley {
namespace harness {

const char *kProfileCacheVersion = "p1";

std::string
profileCachePath()
{
    return cacheDir() + "/valley_profiles_cache.csv";
}

namespace {

/** Same sharding rationale as result_cache: parallel benches must
 * not serialize profile lookups on one global lock. */
constexpr std::size_t kShards = 16;

struct Shard
{
    std::mutex mutex;
    std::map<std::string, EntropyProfile> entries;
};

std::array<Shard, kShards> shards;
std::mutex load_mutex;
std::mutex file_mutex;
bool loaded = false;

Shard &
shardFor(const std::string &key)
{
    return shards[std::hash<std::string>{}(key) % kShards];
}

std::string
serialize(const EntropyProfile &p)
{
    std::ostringstream out;
    out.precision(17);
    out << p.weight << ' ' << p.perBit.size();
    for (double b : p.perBit)
        out << ' ' << b;
    return out.str();
}

std::optional<EntropyProfile>
deserialize(const std::string &line)
{
    std::istringstream in(line);
    EntropyProfile p;
    std::size_t nbits = 0;
    in >> p.weight >> nbits;
    if (!in || nbits > 64)
        return std::nullopt;
    p.perBit.resize(nbits);
    for (double &b : p.perBit)
        in >> b;
    if (!in)
        return std::nullopt;
    return p;
}

void
loadOnce()
{
    std::lock_guard<std::mutex> lock(load_mutex);
    if (loaded)
        return;
    loaded = true;
    std::ifstream in(profileCachePath());
    std::string line;
    while (std::getline(in, line)) {
        const auto sep = line.find('|');
        if (sep == std::string::npos)
            continue;
        const std::string key = line.substr(0, sep);
        if (key.rfind(kProfileCacheVersion, 0) != 0)
            continue; // stale schema version
        if (auto p = deserialize(line.substr(sep + 1))) {
            Shard &shard = shardFor(key);
            std::lock_guard<std::mutex> shard_lock(shard.mutex);
            shard.entries[key] = std::move(*p);
        }
    }
}

} // namespace

std::string
profileCacheKey(const std::string &workload,
                const std::string &mapper_id, unsigned window,
                unsigned nbits, EntropyMetric metric, double scale)
{
    std::ostringstream out;
    out.precision(17); // distinct scales must yield distinct keys
    out << kProfileCacheVersion << ';' << workload << ';'
        << (mapper_id.empty() ? "identity" : mapper_id) << ';'
        << window << ';' << nbits << ';' << static_cast<int>(metric)
        << ';' << scale;
    return out.str();
}

std::optional<EntropyProfile>
profileCacheLookup(const std::string &key)
{
    if (!cacheEnabled())
        return std::nullopt;
    loadOnce();
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it == shard.entries.end())
        return std::nullopt;
    return it->second;
}

void
profileCacheStore(const std::string &key, const EntropyProfile &p)
{
    if (!cacheEnabled())
        return;
    loadOnce();
    {
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.entries[key] = p;
    }
    std::lock_guard<std::mutex> lock(file_mutex);
    std::error_code ec; // best-effort: a failed append only loses memoization
    std::filesystem::create_directories(cacheDir(), ec);
    std::ofstream out(profileCachePath(), std::ios::app);
    out << key << '|' << serialize(p) << '\n';
}

EntropyProfile
profileWorkloadCached(const Workload &workload,
                      const workloads::ProfileOptions &opts,
                      double scale, const std::string &mapper_id)
{
    const std::string key = profileCacheKey(
        workload.info().abbrev, mapper_id, opts.window, opts.numBits,
        opts.metric, scale);
    if (auto hit = profileCacheLookup(key))
        return *hit;
    EntropyProfile p = workloads::profileWorkload(workload, opts);
    profileCacheStore(key, p);
    return p;
}

} // namespace harness
} // namespace valley
