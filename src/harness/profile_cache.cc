#include "harness/profile_cache.hh"

#include <array>
#include <map>
#include <mutex>
#include <sstream>

#include "common/metrics.hh"
#include "common/trace_span.hh"
#include "harness/atomic_io.hh"
#include "harness/result_cache.hh"

namespace valley {
namespace harness {

// p2: checksummed record lines (atomic_io.hh) — pre-checksum epochs
// are skipped as stale on load.
// p3: mapper-registry epoch — profiles are keyed alongside v5 result
// keys and m3 searched matrices; pre-registry lines load as stale.
const char *kProfileCacheVersion = "p3";

std::string
profileCachePath()
{
    return cacheDir() + "/valley_profiles_cache.csv";
}

namespace {

/** Same sharding rationale as result_cache: parallel benches must
 * not serialize profile lookups on one global lock. */
constexpr std::size_t kShards = 16;

struct Shard
{
    std::mutex mutex;
    std::map<std::string, EntropyProfile> entries;
};

std::array<Shard, kShards> shards;
std::mutex load_mutex;
bool loaded = false;

Shard &
shardFor(const std::string &key)
{
    return shards[std::hash<std::string>{}(key) % kShards];
}

std::string
serialize(const EntropyProfile &p)
{
    std::ostringstream out;
    out.precision(17);
    out << p.weight << ' ' << p.perBit.size();
    for (double b : p.perBit)
        out << ' ' << b;
    return out.str();
}

std::optional<EntropyProfile>
deserialize(const std::string &line)
{
    std::istringstream in(line);
    EntropyProfile p;
    std::size_t nbits = 0;
    in >> p.weight >> nbits;
    if (!in || nbits > 64)
        return std::nullopt;
    p.perBit.resize(nbits);
    for (double &b : p.perBit)
        in >> b;
    if (!in)
        return std::nullopt;
    std::string extra;
    if (in >> extra)
        return std::nullopt; // wrong field count for this schema
    return p;
}

void
loadOnce()
{
    std::lock_guard<std::mutex> lock(load_mutex);
    if (loaded)
        return;
    loaded = true;
    // Skip-and-quarantine: a corrupt profile line degrades to a cache
    // miss (re-profiled on demand) instead of feeding the search a
    // garbage entropy profile.
    loadChecksummedRecords(
        profileCachePath(), kProfileCacheVersion,
        [](const std::string &key, const std::string &payload) {
            auto p = deserialize(payload);
            if (!p)
                return false;
            Shard &shard = shardFor(key);
            std::lock_guard<std::mutex> shard_lock(shard.mutex);
            shard.entries[key] = std::move(*p);
            return true;
        });
}

} // namespace

std::string
profileCacheKey(const std::string &workload,
                const std::string &mapper_id, unsigned window,
                unsigned nbits, EntropyMetric metric, double scale)
{
    std::ostringstream out;
    out.precision(17); // distinct scales must yield distinct keys
    out << kProfileCacheVersion << ';' << workload << ';'
        << (mapper_id.empty() ? "identity" : mapper_id) << ';'
        << window << ';' << nbits << ';' << static_cast<int>(metric)
        << ';' << scale;
    return out.str();
}

std::optional<EntropyProfile>
profileCacheLookup(const std::string &key)
{
    if (!cacheEnabled())
        return std::nullopt;
    static metrics::Histogram &lookup_us =
        metrics::histogram("cache.profile.lookup_us");
    metrics::ScopedTimer timer(lookup_us);
    trace::Span span("profile_cache.lookup", "cache");
    loadOnce();
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
        metrics::counter("cache.profile.misses").inc();
        return std::nullopt;
    }
    metrics::counter("cache.profile.hits").inc();
    return it->second;
}

void
profileCacheStore(const std::string &key, const EntropyProfile &p)
{
    if (!cacheEnabled())
        return;
    loadOnce();
    metrics::counter("cache.profile.stores").inc();
    {
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.entries[key] = p;
    }
    // Best-effort atomic append: a failed write only loses
    // memoization; a concurrent one can no longer tear the line.
    atomicAppend(profileCachePath(),
                 checksummedRecord(key, serialize(p)));
}

void
profileCacheResetForTesting()
{
    std::lock_guard<std::mutex> lock(load_mutex);
    for (Shard &s : shards) {
        std::lock_guard<std::mutex> shard_lock(s.mutex);
        s.entries.clear();
    }
    loaded = false;
}

EntropyProfile
profileWorkloadCached(const Workload &workload,
                      const workloads::ProfileOptions &opts,
                      double scale, const std::string &mapper_id)
{
    const std::string key = profileCacheKey(
        workload.info().abbrev, mapper_id, opts.window, opts.numBits,
        opts.metric, scale);
    if (auto hit = profileCacheLookup(key))
        return *hit;
    EntropyProfile p = workloads::profileWorkload(workload, opts);
    profileCacheStore(key, p);
    return p;
}

} // namespace harness
} // namespace valley
