#include "harness/grid_journal.hh"

#include <cstdio>

#include "common/fault_inject.hh"
#include "common/fnv.hh"
#include "common/metrics.hh"
#include "common/trace_span.hh"
#include "harness/atomic_io.hh"
#include "harness/result_cache.hh"
#include "workloads/workload_set.hh"

namespace valley {
namespace harness {

namespace {

/** Payload marker of a poisoned-cell record (see grid_journal.hh). */
constexpr const char *kPoisonMarker = "!poisoned ";

/**
 * Invert `workloads::escapeSpecField` for the poison reason: `%XX`
 * (uppercase hex) back to the byte. Malformed escapes pass through
 * verbatim — the reason is diagnostic text, never a key.
 */
std::string
percentUnescape(const std::string &s)
{
    const auto hexVal = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        return -1;
    };
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '%' && i + 2 < s.size()) {
            const int hi = hexVal(s[i + 1]);
            const int lo = hexVal(s[i + 2]);
            if (hi >= 0 && lo >= 0) {
                out.push_back(static_cast<char>(hi * 16 + lo));
                i += 2;
                continue;
            }
        }
        out.push_back(s[i]);
    }
    return out;
}

} // namespace

std::string
gridIdHex(const std::string &grid_identity)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(
                      bits::fnv1a(grid_identity)));
    return buf;
}

std::string
GridJournal::pathFor(const std::string &grid_identity)
{
    return cacheDir() + "/grid_journal_" + gridIdHex(grid_identity) +
           ".csv";
}

std::map<std::string, RunResult>
GridJournal::load() const
{
    return loadAll().cells;
}

JournalContents
GridJournal::loadAll() const
{
    trace::Span span("journal.load", "cache");
    JournalContents out;
    // Cell keys are result-cache keys, so the journal shares the
    // cache's version prefix: a journal written before a schema bump
    // is all-stale and the grid recomputes from scratch.
    loadChecksummedRecords(
        path_, kResultCacheVersion,
        [&out](const std::string &key, const std::string &payload) {
            // Poison records carry the marker where a serialized
            // result would start (a workload abbreviation can never
            // begin with '!'), so they must be recognized before the
            // result parse — otherwise they would be quarantined as
            // corrupt lines.
            if (payload.rfind(kPoisonMarker, 0) == 0) {
                out.poisoned[key] = percentUnescape(
                    payload.substr(std::string(kPoisonMarker).size()));
                return true;
            }
            auto r = deserializeResult(payload);
            if (!r)
                return false;
            out.cells[key] = std::move(*r);
            return true;
        });
    // Success trumps a stale quarantine: a later run may have
    // completed a cell an earlier run poisoned.
    for (const auto &[key, r] : out.cells)
        out.poisoned.erase(key);
    metrics::counter("journal.cells_loaded").add(out.cells.size());
    metrics::counter("journal.poisoned_loaded")
        .add(out.poisoned.size());
    return out;
}

bool
GridJournal::record(const std::string &cell_key,
                    const RunResult &r) const
{
    fault::maybeInject("journal_append");
    metrics::counter("journal.cells_recorded").inc();
    return atomicAppend(path_,
                        checksummedRecord(cell_key, serializeResult(r)));
}

bool
GridJournal::recordPoisoned(const std::string &cell_key,
                            const std::string &reason) const
{
    fault::maybeInject("journal_append");
    metrics::counter("journal.poisoned_recorded").inc();
    return atomicAppend(
        path_,
        checksummedRecord(cell_key,
                          std::string(kPoisonMarker) +
                              workloads::escapeSpecField(reason)));
}

} // namespace harness
} // namespace valley
