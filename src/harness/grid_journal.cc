#include "harness/grid_journal.hh"

#include <cstdio>

#include "common/fnv.hh"
#include "harness/atomic_io.hh"
#include "harness/result_cache.hh"

namespace valley {
namespace harness {

std::string
GridJournal::pathFor(const std::string &grid_identity)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(
                      bits::fnv1a(grid_identity)));
    return cacheDir() + "/grid_journal_" + buf + ".csv";
}

std::map<std::string, RunResult>
GridJournal::load() const
{
    std::map<std::string, RunResult> cells;
    // Cell keys are result-cache keys, so the journal shares the
    // cache's version prefix: a journal written before a schema bump
    // is all-stale and the grid recomputes from scratch.
    loadChecksummedRecords(
        path_, kResultCacheVersion,
        [&cells](const std::string &key, const std::string &payload) {
            auto r = deserializeResult(payload);
            if (!r)
                return false;
            cells[key] = std::move(*r);
            return true;
        });
    return cells;
}

bool
GridJournal::record(const std::string &cell_key,
                    const RunResult &r) const
{
    return atomicAppend(path_,
                        checksummedRecord(cell_key, serializeResult(r)));
}

} // namespace harness
} // namespace valley
