#include "gpu/gpu_system.hh"

#include <algorithm>
#include <cassert>
#include <functional>
#include <stdexcept>

namespace valley {

namespace {

/** LLC read waiters store sm+1 so 0 can mean "write, nobody waits". */
constexpr std::uint64_t kNoWaiter = 0;

} // namespace

GpuSystem::GpuSystem(const SimConfig &cfg_, const AddressMapper &mapper_)
    : cfg(cfg_), mapper(mapper_), decoder(cfg.layout)
{
    if (mapper.layout().addrBits != cfg.layout.addrBits)
        throw std::invalid_argument(
            "GpuSystem: mapper layout does not match config layout");
}

void
GpuSystem::pushEvent(const Event &ev)
{
    events.push_back(ev);
    std::push_heap(events.begin(), events.end(), std::greater<>{});
}

unsigned
GpuSystem::warpGid(unsigned sm, unsigned warp) const
{
    return sm * cfg.maxWarpsPerSm + warp;
}

void
GpuSystem::premapTrace(TbTrace &trace) const
{
    // The BIM address mapper sits right after the coalescer; applying
    // it once to the freshly generated (per-run, per-TB) trace copy
    // removes the transform from every later issue/retry of the line.
    const CompiledTransform &bim = mapper.compiled();
    if (bim.isIdentity())
        return;
    for (WarpTrace &warp : trace.warps)
        for (MemInstr &instr : warp.instrs)
            for (Addr &line : instr.lines)
                line = bim.apply(line);
}

unsigned
GpuSystem::tbSlotsFor(const Kernel &k) const
{
    const unsigned by_threads =
        cfg.maxThreadsPerSm / std::max(1u, k.threadsPerTb());
    const unsigned by_warps =
        cfg.maxWarpsPerSm / std::max(1u, k.warpsPerTb());
    return std::max(1u, std::min({cfg.maxTbsPerSm, by_threads,
                                  by_warps}));
}

void
GpuSystem::dispatchTbs(const Kernel &k)
{
    // Fill free TB slots round-robin across SMs, one TB per SM per
    // call, mirroring the GPGPU-Sim TB scheduler.
    bool assigned = true;
    while (assigned && tbNext < k.numTbs()) {
        assigned = false;
        for (unsigned s = 0; s < cfg.numSms && tbNext < k.numTbs();
             ++s) {
            Sm &sm = sms[s];
            for (unsigned slot = 0; slot < sm.tbSlots.size(); ++slot) {
                if (sm.tbSlots[slot].active)
                    continue;
                TbSlot &tbs = sm.tbSlots[slot];
                tbs.trace = k.trace(tbNext);
                premapTrace(tbs.trace);
                tbs.active = true;
                tbs.warpsLeft = 0;
                ++sm.activeTbs;
                for (unsigned w = 0; w < k.warpsPerTb(); ++w) {
                    WarpRt &warp = sm.warps[slot * k.warpsPerTb() + w];
                    warp.trace = &tbs.trace.warps[w];
                    warp.nextInstr = 0;
                    warp.outstanding = 0;
                    warp.waiting = false;
                    warp.tbSlot = slot;
                    warp.age = dispatchSeq;
                    const bool has_work = !warp.trace->instrs.empty();
                    warp.active = has_work;
                    if (has_work) {
                        warp.readyAt =
                            cycle + warp.trace->instrs.front().gap;
                        ++tbs.warpsLeft;
                    }
                }
                ++dispatchSeq;
                ++tbNext;
                if (tbs.warpsLeft == 0) {
                    // Degenerate TB with no memory work.
                    tbs.active = false;
                    --sm.activeTbs;
                    ++tbDone;
                }
                assigned = true;
                break;
            }
        }
    }
}

void
GpuSystem::issueStage(unsigned sm_idx)
{
    Sm &sm = sms[sm_idx];
    if (sm.lsu.size() >= cfg.lsuQueueDepth)
        return;
    const unsigned warps_in_use =
        static_cast<unsigned>(sm.warps.size());

    for (unsigned sched = 0; sched < cfg.schedulersPerSm; ++sched) {
        const auto issuable = [&](unsigned w) {
            const WarpRt &warp = sm.warps[w];
            return warp.active && !warp.waiting &&
                   warp.readyAt <= cycle &&
                   warp.trace != nullptr &&
                   warp.nextInstr < warp.trace->instrs.size();
        };

        // Greedy-then-oldest: stick with the last warp while it is
        // ready; otherwise pick the oldest ready warp of this
        // scheduler (age = TB dispatch order, then warp index).
        unsigned pick = UINT32_MAX;
        const unsigned last = sm.lastIssued[sched];
        if (last != UINT32_MAX && last < warps_in_use &&
            (last % cfg.schedulersPerSm) == sched && issuable(last)) {
            pick = last;
        } else {
            std::uint64_t best_age = ~std::uint64_t{0};
            for (unsigned w = sched; w < warps_in_use;
                 w += cfg.schedulersPerSm) {
                if (!issuable(w))
                    continue;
                if (sm.warps[w].age < best_age ||
                    (sm.warps[w].age == best_age && w < pick)) {
                    best_age = sm.warps[w].age;
                    pick = w;
                }
            }
        }
        if (pick == UINT32_MAX)
            continue;

        WarpRt &warp = sm.warps[pick];
        const MemInstr &instr = warp.trace->instrs[warp.nextInstr];
        warp.outstanding = static_cast<unsigned>(instr.lines.size());
        warp.waiting = true;
        sm.lastIssued[sched] = pick;
        for (Addr line : instr.lines) {
            // Lines were remapped once at TB dispatch (premapTrace).
            sm.lsu.push_back(LineReq{line, warpGid(sm_idx, pick),
                                     instr.write});
        }
        requests += instr.lines.size();
        instructions += static_cast<double>(instr.lines.size()) *
                        instrsPerRequest;
        noteProgress();
        if (sm.lsu.size() >= cfg.lsuQueueDepth)
            return;
    }
}

bool
GpuSystem::tryIssueLine(unsigned sm_idx, const LineReq &req)
{
    SetAssocCache &l1 = l1s[sm_idx];
    const DramCoord coord = decoder.decode(req.line);
    const unsigned slice = cfg.sliceOf(coord);

    if (req.write) {
        // Write-through: needs a request-NoC slot for the data.
        if (!reqNoc->canInject(sm_idx))
            return false;
        l1.access(req.line, true, kNoWaiter);
        reqNoc->inject(sm_idx, slice, cfg.dataPacketBytes,
                       (std::uint64_t{1} << 63) |
                           (std::uint64_t{sm_idx} << 48) | req.line,
                       nocCycle);
        // The store completes for the warp once buffered.
        pushEvent(Event{cycle + 1, Event::Type::WarpLineDone,
                        req.warpGid, 0, 0});
        return true;
    }

    // Read path. Avoid allocating MSHRs we cannot back with a NoC
    // injection: probe first.
    const bool present = l1.contains(req.line);
    const bool merged = l1.mshrPending(req.line);
    if (!present && !merged) {
        if (!l1.mshrAvailable() || !reqNoc->canInject(sm_idx))
            return false;
    }

    const CacheAccessResult r =
        l1.access(req.line, false, req.warpGid + 1);
    switch (r.kind) {
      case CacheAccessResult::Kind::Hit:
        pushEvent(Event{cycle + cfg.l1HitLatency,
                        Event::Type::WarpLineDone, req.warpGid, 0, 0});
        return true;
      case CacheAccessResult::Kind::MergedMiss:
        return true; // woken by the fill
      case CacheAccessResult::Kind::Miss:
        reqNoc->inject(sm_idx, slice, cfg.readReqBytes,
                       (std::uint64_t{sm_idx} << 48) | req.line,
                       nocCycle);
        return true;
      case CacheAccessResult::Kind::Stall:
        return false;
    }
    return false;
}

void
GpuSystem::lsuStage(unsigned sm_idx)
{
    Sm &sm = sms[sm_idx];
    for (unsigned n = 0; n < cfg.lsuWidth && !sm.lsu.empty(); ++n) {
        if (!tryIssueLine(sm_idx, sm.lsu.front()))
            break; // head-of-line blocking; retry next cycle
        sm.lsu.pop_front();
        noteProgress();
    }
}

void
GpuSystem::lineDone(unsigned gid)
{
    const unsigned sm_idx = gid / cfg.maxWarpsPerSm;
    const unsigned w = gid % cfg.maxWarpsPerSm;
    WarpRt &warp = sms[sm_idx].warps[w];
    if (!warp.active || warp.outstanding == 0)
        return; // stale wakeup (e.g. L1 fill after warp finished)
    if (--warp.outstanding == 0)
        warpInstrDone(gid);
}

void
GpuSystem::warpInstrDone(unsigned gid)
{
    const unsigned sm_idx = gid / cfg.maxWarpsPerSm;
    const unsigned w = gid % cfg.maxWarpsPerSm;
    Sm &sm = sms[sm_idx];
    WarpRt &warp = sm.warps[w];

    warp.waiting = false;
    ++warp.nextInstr;
    noteProgress();
    if (warp.nextInstr < warp.trace->instrs.size()) {
        warp.readyAt = cycle + warp.trace->instrs[warp.nextInstr].gap;
        return;
    }

    // Warp retired; maybe the TB too.
    warp.active = false;
    TbSlot &tbs = sm.tbSlots[warp.tbSlot];
    assert(tbs.warpsLeft > 0);
    if (--tbs.warpsLeft == 0) {
        tbs.active = false;
        --sm.activeTbs;
        ++tbDone;
        if (kernel)
            dispatchTbs(*kernel);
    }
}

void
GpuSystem::sliceTick(unsigned slice)
{
    const unsigned mc_queue = slice; // naming clarity only
    (void)mc_queue;

    // 1. Retry stalled replies first (they hold MSHR-free data).
    auto &stalled = stalledReplies[slice];
    while (!stalled.empty()) {
        const auto [sm, line] = stalled.front();
        if (!replyNoc->inject(slice, sm, cfg.dataPacketBytes,
                              (std::uint64_t{sm} << 48) | line,
                              nocCycle))
            break;
        stalled.pop_front();
    }

    // 2. Retry pending writebacks (dirty evictions).
    auto &wbs = pendingWritebacks[slice];
    while (!wbs.empty()) {
        if (!dram->enqueue(wbs.front(), dramCycle))
            break;
        wbs.pop_front();
    }

    // 3. Serve the input queue.
    for (unsigned n = 0; n < cfg.llcPortsPerTick; ++n) {
        if (sliceQueue[slice].empty())
            break;
        const SliceReq req = sliceQueue[slice].front();
        SetAssocCache &cache = llc[slice];
        const DramCoord coord = decoder.decode(req.line);

        const bool present = cache.contains(req.line);
        const bool pending = cache.mshrPending(req.line);
        if (!present && !pending) {
            // Will need a DRAM fill: require MSHR + MC queue space.
            if (!cache.mshrAvailable() ||
                !dram->canAccept(coord.channel))
                break;
        }

        const std::uint64_t waiter =
            req.write ? kNoWaiter : std::uint64_t{req.sm} + 1;
        const CacheAccessResult r =
            cache.access(req.line, req.write, waiter);
        switch (r.kind) {
          case CacheAccessResult::Kind::Hit:
            if (!req.write)
                pushEvent(Event{cycle + cfg.llcLatency,
                                Event::Type::ReplyReady, slice,
                                req.sm, req.line});
            break;
          case CacheAccessResult::Kind::MergedMiss:
            break;
          case CacheAccessResult::Kind::Miss: {
            DramRequest dr;
            dr.coord = coord;
            dr.write = false;
            dr.tag = (std::uint64_t{slice} << 40) | req.line;
            dram->enqueue(dr, dramCycle);
            break;
          }
          case CacheAccessResult::Kind::Stall:
            break; // handled by the resource probe above
        }
        sliceQueue[slice].pop_front();
        noteProgress();
    }
}

void
GpuSystem::deliverReply(unsigned sm, Addr line)
{
    CacheAccessResult eviction;
    const auto waiters = l1s[sm].fill(line, eviction);
    // L1 is write-through: evictions are always clean.
    for (std::uint64_t w : waiters)
        if (w != kNoWaiter)
            lineDone(static_cast<unsigned>(w - 1));
    noteProgress();
}

void
GpuSystem::handleDramCompletions()
{
    for (const DramCompletion &c : dramDone) {
        const unsigned slice = static_cast<unsigned>(c.tag >> 40);
        const Addr line = c.tag & ((std::uint64_t{1} << 40) - 1);
        CacheAccessResult eviction;
        const auto waiters = llc[slice].fill(line, eviction);
        if (eviction.dirtyEviction) {
            DramRequest wb;
            wb.coord = decoder.decode(eviction.victimLine);
            wb.write = true;
            wb.tag = 0;
            if (!dram->enqueue(wb, dramCycle))
                pendingWritebacks[slice].push_back(wb);
        }
        for (std::uint64_t w : waiters) {
            if (w == kNoWaiter)
                continue;
            const unsigned sm = static_cast<unsigned>(w - 1);
            ++llcReadReplies;
            pushEvent(Event{cycle + 4, Event::Type::ReplyReady,
                            slice, sm, line});
        }
        noteProgress();
    }
    dramDone.clear();
}

void
GpuSystem::sampleMetrics()
{
    unsigned busy_slices = 0;
    for (unsigned s = 0; s < cfg.llcSlices; ++s)
        busy_slices += !sliceQueue[s].empty() ||
                       llc[s].mshrInUse() > 0 ||
                       !stalledReplies[s].empty();
    if (busy_slices) {
        ++llcBusySamples;
        llcBusySum += busy_slices;
    }

    const unsigned busy_ch = dram->channelsWithPending();
    if (busy_ch) {
        ++chBusySamples;
        chBusySum += busy_ch;
        const unsigned busy_banks = dram->banksWithPending();
        bankPerChannelSum += static_cast<double>(busy_banks) /
                             static_cast<double>(busy_ch);
        ++bankSamples;
    }
}

RunResult
GpuSystem::run(const Workload &workload)
{
    // ---- reset all run state ------------------------------------------
    sms.assign(cfg.numSms, Sm{});
    for (Sm &sm : sms) {
        sm.warps.assign(cfg.maxWarpsPerSm, WarpRt{});
        sm.lastIssued.assign(cfg.schedulersPerSm, UINT32_MAX);
    }
    l1s.clear();
    for (unsigned s = 0; s < cfg.numSms; ++s)
        l1s.emplace_back(cfg.l1);
    llc.clear();
    for (unsigned s = 0; s < cfg.llcSlices; ++s)
        llc.emplace_back(cfg.llcSlice);
    sliceQueue.assign(cfg.llcSlices, {});
    pendingWritebacks.assign(cfg.llcSlices, {});
    stalledReplies.assign(cfg.llcSlices, {});
    reqNoc = std::make_unique<Crossbar>(cfg.numSms, cfg.llcSlices,
                                        cfg.nocChannelBytes,
                                        cfg.nocQueueDepth);
    replyNoc = std::make_unique<Crossbar>(cfg.llcSlices, cfg.numSms,
                                          cfg.nocChannelBytes,
                                          cfg.nocQueueDepth);
    dram = std::make_unique<DramSystem>(cfg.layout.numChannels(),
                                        cfg.layout.numBanksPerChannel(),
                                        cfg.dram, cfg.mcQueueDepth);
    events.clear();
    events.reserve(4096);
    dramDone.clear();
    cycle = nocCycle = dramCycle = 0;
    dramAcc = 0;
    lastProgress = 0;
    dispatchSeq = 0;
    requests = 0;
    instructions = 0.0;
    llcReadReplies = 0;
    llcBusySamples = llcBusySum = 0;
    chBusySamples = chBusySum = 0;
    bankSamples = 0;
    bankPerChannelSum = 0.0;

    std::vector<NocDelivery> deliveries;

    // ---- simulate kernels back to back ------------------------------------
    for (const Kernel &k : workload.kernels()) {
        kernel = &k;
        tbNext = 0;
        tbDone = 0;
        instrsPerRequest = k.params().instrsPerRequest;

        const unsigned slots = tbSlotsFor(k);
        for (Sm &sm : sms) {
            sm.tbSlots.assign(slots, TbSlot{});
            sm.activeTbs = 0;
            sm.lastIssued.assign(cfg.schedulersPerSm, UINT32_MAX);
        }
        dispatchTbs(k);

        while (tbDone < k.numTbs()) {
            ++cycle;
            if (cycle >= cfg.maxCycles)
                throw std::runtime_error("GpuSystem: cycle budget "
                                         "exceeded in " + k.name());
            if (cycle - lastProgress > cfg.watchdogCycles)
                throw std::runtime_error(
                    "GpuSystem: no forward progress in " + k.name());

            // SM domain.
            for (unsigned s = 0; s < cfg.numSms; ++s) {
                lsuStage(s);
                issueStage(s);
            }

            // Event retirement (L1 hits, store acks, LLC replies).
            while (!events.empty() && events.front().at <= cycle) {
                const Event ev = events.front();
                std::pop_heap(events.begin(), events.end(),
                              std::greater<>{});
                events.pop_back();
                if (ev.type == Event::Type::WarpLineDone) {
                    lineDone(ev.a);
                } else {
                    // LLC reply ready: inject or park it.
                    if (!replyNoc->inject(
                            ev.a, ev.b, cfg.dataPacketBytes,
                            (std::uint64_t{ev.b} << 48) | ev.line,
                            nocCycle))
                        stalledReplies[ev.a].emplace_back(ev.b,
                                                          ev.line);
                }
            }

            // NoC + LLC domain (700 MHz).
            if (cycle % cfg.nocPeriod == 0) {
                ++nocCycle;
                deliveries.clear();
                reqNoc->tick(nocCycle, deliveries);
                for (const NocDelivery &d : deliveries) {
                    const bool is_write = d.tag >> 63;
                    const unsigned sm =
                        static_cast<unsigned>((d.tag >> 48) & 0x7FFF);
                    const Addr line =
                        d.tag & ((std::uint64_t{1} << 48) - 1);
                    sliceQueue[d.output].push_back(
                        SliceReq{line, sm, is_write});
                }
                for (unsigned s = 0; s < cfg.llcSlices; ++s)
                    sliceTick(s);
                deliveries.clear();
                replyNoc->tick(nocCycle, deliveries);
                for (const NocDelivery &d : deliveries)
                    deliverReply(d.output,
                                 d.tag &
                                     ((std::uint64_t{1} << 48) - 1));
            }

            // DRAM domain (fractional clock).
            dramAcc += cfg.dramClockNum;
            while (dramAcc >= cfg.dramClockDen) {
                dramAcc -= cfg.dramClockDen;
                ++dramCycle;
                dram->tick(dramCycle, dramDone);
                if (!dramDone.empty())
                    handleDramCompletions();
            }

            if (cycle % cfg.metricSamplePeriod == 0)
                sampleMetrics();
        }
    }
    kernel = nullptr;

    // ---- collect results ---------------------------------------------------
    RunResult r;
    r.workload = workload.info().abbrev;
    r.scheme = mapper.name();
    r.config = cfg.name;
    r.cycles = cycle;
    r.seconds = cfg.secondsFor(cycle);
    r.instructions = static_cast<std::uint64_t>(instructions);
    r.requests = requests;

    for (const SetAssocCache &c : l1s) {
        r.l1Accesses += c.stats().accesses;
        r.l1Misses += c.stats().misses + c.stats().mshrMerges;
    }
    std::uint64_t llc_hits = 0;
    for (const SetAssocCache &c : llc) {
        r.llcAccesses += c.stats().accesses;
        r.llcMisses += c.stats().misses + c.stats().mshrMerges;
        llc_hits += c.stats().hits;
    }
    (void)llc_hits;
    r.llcMissRate = r.llcAccesses
                        ? static_cast<double>(r.llcMisses) /
                              static_cast<double>(r.llcAccesses)
                        : 0.0;

    const NocStats &rq = reqNoc->stats();
    const NocStats &rp = replyNoc->stats();
    const std::uint64_t packets = rq.packets + rp.packets;
    r.nocLatencySmCycles =
        packets ? static_cast<double>(rq.latencySum + rp.latencySum) /
                      static_cast<double>(packets) *
                      static_cast<double>(cfg.nocPeriod)
                : 0.0;

    r.llcParallelism =
        llcBusySamples ? static_cast<double>(llcBusySum) /
                             static_cast<double>(llcBusySamples)
                       : 0.0;
    r.channelParallelism =
        chBusySamples ? static_cast<double>(chBusySum) /
                            static_cast<double>(chBusySamples)
                      : 0.0;
    r.bankParallelism =
        bankSamples ? bankPerChannelSum /
                          static_cast<double>(bankSamples)
                    : 0.0;

    r.dram = dram->totalStats();
    r.rowBufferHitRate = r.dram.rowHitRate();
    r.dramPower = computeDramPower(r.dram, cfg.layout.numChannels(),
                                   r.seconds, cfg.dramPower);

    GpuActivityCounts activity;
    activity.instructions = r.instructions;
    activity.l1Accesses = r.l1Accesses;
    activity.llcAccesses = r.llcAccesses;
    activity.nocFlits = rq.flits + rp.flits;
    r.gpuPower =
        computeGpuPower(activity, cfg.numSms, r.seconds, cfg.gpuPower);
    r.systemPowerW = systemPowerW(r.gpuPower, r.dramPower);
    return r;
}

} // namespace valley
