/**
 * @file
 * Simulated GPU configuration (paper Table I) and the preset
 * variants used by the sensitivity studies (Fig. 18).
 */

#ifndef VALLEY_GPU_SIM_CONFIG_HH
#define VALLEY_GPU_SIM_CONFIG_HH

#include <string>

#include "cache/set_assoc_cache.hh"
#include "dram/dram_timing.hh"
#include "mapping/address_layout.hh"
#include "power/dram_power.hh"
#include "power/gpu_power.hh"

namespace valley {

/** Full machine description consumed by GpuSystem. */
struct SimConfig
{
    std::string name = "baseline";

    // --- SMs (Table I "SM Configuration") ------------------------------
    unsigned numSms = 12;
    unsigned maxTbsPerSm = 8;
    unsigned maxThreadsPerSm = 1536; ///< 48 warps x 32 threads
    unsigned maxWarpsPerSm = 48;
    unsigned schedulersPerSm = 2;    ///< GTO warp schedulers
    unsigned lsuWidth = 2;           ///< L1 accesses per SM cycle
    unsigned lsuQueueDepth = 96;
    double smClockGhz = 1.4;

    // --- L1D ------------------------------------------------------------
    CacheConfig l1{16 * 1024, 4, 128, 32, /*writeAllocate=*/false};
    unsigned l1HitLatency = 28; ///< SM cycles

    // --- LLC (8 slices x 64 KB) ------------------------------------------
    unsigned llcSlices = 8;
    CacheConfig llcSlice{64 * 1024, 8, 128, 32, /*writeAllocate=*/true};
    unsigned llcLatency = 60;   ///< slice pipeline latency, SM cycles
    unsigned llcPortsPerTick = 2;

    // --- NoC (12x8 crossbar, 700 MHz, 32 B channels) ---------------------
    unsigned nocChannelBytes = 32;
    unsigned nocPeriod = 2;     ///< SM cycles per NoC cycle
    unsigned nocQueueDepth = 8;
    unsigned readReqBytes = 8;
    unsigned dataPacketBytes = 136; ///< 128 B line + header

    // --- DRAM -------------------------------------------------------------
    AddressLayout layout = AddressLayout::hynixGddr5();
    DramTiming dram = DramTiming::hynixGddr5();
    unsigned mcQueueDepth = 64;
    /** DRAM ticks advance dramClockNum per dramClockDen SM cycles. */
    unsigned dramClockNum = 924;
    unsigned dramClockDen = 1400;

    // --- Power ------------------------------------------------------------
    DramPowerParams dramPower = DramPowerParams::hynixGddr5();
    GpuPowerParams gpuPower = GpuPowerParams::gtx480Class();

    // --- Metrics ------------------------------------------------------------
    /** Sample Fig. 14 parallelism every N cycles (1 = every cycle). */
    unsigned metricSamplePeriod = 1;

    // --- Safety -------------------------------------------------------------
    Cycle maxCycles = 400'000'000;
    Cycle watchdogCycles = 2'000'000; ///< abort if nothing progresses

    /** Table I configuration: 12 SMs + 4-channel GDDR5. */
    static SimConfig paperBaseline();

    /** Fig. 18: same memory system with 12/24/48 SMs. */
    static SimConfig withSms(unsigned sms);

    /** Fig. 18 right: 64 SMs + 3D-stacked memory (64 vaults). */
    static SimConfig stacked3d();

    /** LLC slices per DRAM channel (>= 1). */
    unsigned
    slicesPerChannel() const
    {
        const unsigned ch = layout.numChannels();
        return llcSlices >= ch ? llcSlices / ch : 1;
    }

    /** LLC slice index of a mapped address' DRAM coordinates. */
    unsigned
    sliceOf(const DramCoord &c) const
    {
        const unsigned spc = slicesPerChannel();
        return (c.channel * spc + (c.bank % spc)) % llcSlices;
    }

    /** Simulated seconds for a cycle count. */
    double
    secondsFor(Cycle cycles) const
    {
        return static_cast<double>(cycles) / (smClockGhz * 1e9);
    }
};

} // namespace valley

#endif // VALLEY_GPU_SIM_CONFIG_HH
