#include "gpu/sim_config.hh"

#include <stdexcept>

namespace valley {

SimConfig
SimConfig::paperBaseline()
{
    return SimConfig{};
}

SimConfig
SimConfig::withSms(unsigned sms)
{
    if (sms == 0)
        throw std::invalid_argument("withSms: need at least one SM");
    SimConfig cfg;
    cfg.name = std::to_string(sms) + "SM conv. DRAM";
    cfg.numSms = sms;
    return cfg;
}

SimConfig
SimConfig::stacked3d()
{
    SimConfig cfg;
    cfg.name = "64SM 3D DRAM";
    cfg.numSms = 64;
    cfg.layout = AddressLayout::stacked3d();
    cfg.dram = DramTiming::stacked3d();
    cfg.dramPower = DramPowerParams::stacked3d();
    // One memory partition (LLC slice + controller) per vault, as in
    // the paper's 3D configuration scaled to 64 independent vaults.
    cfg.llcSlices = 64;
    cfg.mcQueueDepth = 32;
    cfg.dramClockNum = 1250;
    cfg.dramClockDen = 1400;
    // 64 vaults x 16 banks make per-cycle sampling expensive.
    cfg.metricSamplePeriod = 4;
    return cfg;
}

} // namespace valley
