/**
 * @file
 * Cycle-level GPU memory-subsystem simulator (the GPGPU-Sim v3.2.2
 * substitute, see DESIGN.md).
 *
 * Pipeline per memory instruction:
 *
 *   warp (GTO issue) -> coalescer output (the workload trace)
 *     -> address mapper (BIM)  -> L1D (MSHRs)
 *     -> request crossbar      -> LLC slice (MSHRs)
 *     -> FR-FCFS controller    -> GDDR5 banks
 *     -> reply crossbar        -> L1 fill -> warp wakeup
 *
 * Three clock domains: SM (1.4 GHz), NoC (700 MHz = every 2nd SM
 * cycle) and DRAM command clock (924 MHz via a fractional
 * accumulator). Writes are write-through at the L1 and write-allocate
 * at the LLC; dirty LLC evictions produce DRAM writebacks.
 *
 * The simulator samples the Fig. 14 parallelism metrics each cycle
 * and reports the full RunResult including Micron DRAM power and
 * GPUWattch-style system power.
 */

#ifndef VALLEY_GPU_GPU_SYSTEM_HH
#define VALLEY_GPU_GPU_SYSTEM_HH

#include <vector>

#include "cache/set_assoc_cache.hh"
#include "common/ring_buffer.hh"
#include "dram/dram_system.hh"
#include "gpu/run_result.hh"
#include "gpu/sim_config.hh"
#include "mapping/address_mapper.hh"
#include "noc/crossbar.hh"
#include "workloads/workload.hh"

namespace valley {

/**
 * One simulated machine bound to an address mapping scheme.
 */
class GpuSystem
{
  public:
    GpuSystem(const SimConfig &cfg, const AddressMapper &mapper);

    /** Simulate a workload to completion and report all metrics. */
    RunResult run(const Workload &workload);

  private:
    // ---- static runtime structures -----------------------------------
    struct WarpRt
    {
        const WarpTrace *trace = nullptr;
        unsigned nextInstr = 0;
        unsigned outstanding = 0;
        Cycle readyAt = 0;
        bool waiting = false;
        bool active = false;
        unsigned tbSlot = 0;
        std::uint64_t age = 0; ///< TB dispatch sequence (GTO ordering)
    };

    struct TbSlot
    {
        TbTrace trace;
        unsigned warpsLeft = 0;
        bool active = false;
    };

    struct LineReq
    {
        Addr line; ///< mapped line address
        unsigned warpGid;
        bool write;
    };

    struct Sm
    {
        std::vector<TbSlot> tbSlots;
        std::vector<WarpRt> warps;
        RingBuffer<LineReq> lsu;
        std::vector<unsigned> lastIssued; ///< per scheduler
        unsigned activeTbs = 0;
    };

    struct SliceReq
    {
        Addr line;
        unsigned sm;
        bool write;
    };

    struct Event
    {
        Cycle at;
        enum class Type : std::uint8_t
        {
            WarpLineDone,
            ReplyReady
        } type;
        unsigned a = 0; ///< warpGid / slice
        unsigned b = 0; ///< - / sm
        Addr line = 0;

        bool
        operator>(const Event &o) const
        {
            return at > o.at;
        }
    };

    // ---- helpers -------------------------------------------------------
    /** Min-heap push into the reserved event storage. */
    void pushEvent(const Event &ev);
    unsigned warpGid(unsigned sm, unsigned warp) const;
    /** Remap a freshly generated TB trace once, at dispatch. */
    void premapTrace(TbTrace &trace) const;
    unsigned tbSlotsFor(const Kernel &k) const;
    void dispatchTbs(const Kernel &kernel);
    void issueStage(unsigned sm_idx);
    void lsuStage(unsigned sm_idx);
    bool tryIssueLine(unsigned sm_idx, const LineReq &req);
    void lineDone(unsigned gid);
    void warpInstrDone(unsigned gid);
    void sliceTick(unsigned slice);
    void handleDramCompletions();
    void deliverReply(unsigned sm, Addr line);
    void sampleMetrics();
    void noteProgress() { lastProgress = cycle; }

    // ---- configuration -----------------------------------------------
    const SimConfig cfg;
    const AddressMapper &mapper;
    const CompiledDecoder decoder; ///< precompiled cfg.layout.decode

    // ---- per-run state -------------------------------------------------
    std::vector<Sm> sms;
    std::vector<SetAssocCache> l1s;
    std::vector<SetAssocCache> llc;
    std::vector<RingBuffer<SliceReq>> sliceQueue;
    std::vector<RingBuffer<DramRequest>> pendingWritebacks;
    std::vector<RingBuffer<std::pair<unsigned, Addr>>> stalledReplies;
    std::unique_ptr<Crossbar> reqNoc;
    std::unique_ptr<Crossbar> replyNoc;
    std::unique_ptr<DramSystem> dram;
    std::vector<Event> events; ///< min-heap (std::push_heap/pop_heap)
    std::vector<DramCompletion> dramDone;

    const Kernel *kernel = nullptr;
    TbId tbNext = 0;
    TbId tbDone = 0;
    std::uint64_t dispatchSeq = 0;

    Cycle cycle = 0;
    Cycle nocCycle = 0;
    Cycle dramCycle = 0;
    std::uint64_t dramAcc = 0;
    Cycle lastProgress = 0;

    // ---- counters --------------------------------------------------------
    std::uint64_t requests = 0;
    double instructions = 0.0;
    double instrsPerRequest = 60.0;
    std::uint64_t llcReadReplies = 0;

    // Fig. 14 sampling accumulators.
    std::uint64_t llcBusySamples = 0, llcBusySum = 0;
    std::uint64_t chBusySamples = 0, chBusySum = 0;
    std::uint64_t bankSamples = 0;
    double bankPerChannelSum = 0.0;
};

} // namespace valley

#endif // VALLEY_GPU_GPU_SYSTEM_HH
