/**
 * @file
 * Metrics produced by one simulation run — everything the paper's
 * evaluation figures consume.
 */

#ifndef VALLEY_GPU_RUN_RESULT_HH
#define VALLEY_GPU_RUN_RESULT_HH

#include <cstdint>
#include <string>

#include "dram/memory_controller.hh"
#include "power/dram_power.hh"
#include "power/gpu_power.hh"

namespace valley {

/** All outputs of GpuSystem::run. */
struct RunResult
{
    std::string workload;
    std::string scheme;
    std::string config;

    // --- Performance ------------------------------------------------------
    Cycle cycles = 0;
    double seconds = 0.0;
    std::uint64_t instructions = 0;

    // --- Memory hierarchy (Fig. 13) ----------------------------------------
    std::uint64_t requests = 0;     ///< coalesced transactions issued
    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t llcAccesses = 0;
    std::uint64_t llcMisses = 0;
    double llcMissRate = 0.0;
    double nocLatencySmCycles = 0.0; ///< avg packet latency, SM cycles

    // --- Parallelism (Fig. 14, sampled when >= 1 outstanding) --------------
    double llcParallelism = 0.0;
    double channelParallelism = 0.0;
    double bankParallelism = 0.0; ///< banks per busy channel

    // --- DRAM (Fig. 15/16) ----------------------------------------------
    DramChannelStats dram;
    double rowBufferHitRate = 0.0;
    DramPowerBreakdown dramPower;

    // --- System power (Fig. 17) ---------------------------------------------
    GpuPowerBreakdown gpuPower;
    double systemPowerW = 0.0;

    /** Exact (bit-level) equality — parallel/serial grid checks. */
    bool operator==(const RunResult &) const = default;

    // --- Derived -------------------------------------------------------------
    double
    apki() const
    {
        return instructions
                   ? static_cast<double>(llcAccesses) * 1000.0 /
                         static_cast<double>(instructions)
                   : 0.0;
    }

    double
    mpki() const
    {
        return instructions
                   ? static_cast<double>(llcMisses) * 1000.0 /
                         static_cast<double>(instructions)
                   : 0.0;
    }

    /** Performance as 1/time; use ratios against a baseline run. */
    double
    performance() const
    {
        return seconds > 0.0 ? 1.0 / seconds : 0.0;
    }

    double
    performancePerWatt() const
    {
        return systemPowerW > 0.0 ? performance() / systemPowerW : 0.0;
    }
};

} // namespace valley

#endif // VALLEY_GPU_RUN_RESULT_HH
