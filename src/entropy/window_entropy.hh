/**
 * @file
 * Window-based address-bit entropy (paper Section III).
 *
 * GPU memory requests from concurrent thread blocks interleave
 * unpredictably, so bit-flip-rate entropy estimators are unreliable.
 * The paper instead computes, per thread block, the Bit Value Ratio
 * (BVR) of every address bit — the fraction of 1-values across the
 * TB's requests — and then slides a window of `w` TBs (sorted by TB
 * id, approximating the TB scheduler) over the BVR sequence. The
 * entropy of the BVR multiset inside each window (Shannon entropy with
 * logarithm base = number of distinct BVR values, Eq. 1) is averaged
 * over all windows (Eq. 2). `w` is set to the number of SMs.
 */

#ifndef VALLEY_ENTROPY_WINDOW_ENTROPY_HH
#define VALLEY_ENTROPY_WINDOW_ENTROPY_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hh"

namespace valley {

/**
 * Shannon entropy of a discrete distribution using log base `v` where
 * `v` is the number of outcomes (paper Eq. 1). Returns a value in
 * [0, 1]; by convention the entropy of a single-outcome distribution
 * is 0. Probabilities must sum to ~1.
 */
double shannonEntropyBaseV(const std::vector<double> &probs);

/**
 * Per-thread-block accumulator of address-bit value counts.
 *
 * Feed it every memory request address issued by one TB; `bvrs()`
 * yields the per-bit fraction of 1-values (the BVR vector).
 */
class BvrAccumulator
{
  public:
    explicit BvrAccumulator(unsigned nbits);

    /** Account one request address. */
    void add(Addr a);

    /** Number of accumulated requests. */
    std::uint64_t requestCount() const { return total; }

    /** Bit width tracked. */
    unsigned numBits() const { return nbits; }

    /** Per-bit BVR in [0,1]; all zeros when no requests were added. */
    std::vector<double> bvrs() const;

  private:
    unsigned nbits;
    std::uint64_t total = 0;
    std::vector<std::uint64_t> ones;
};

/**
 * Window-based entropy H* (Eq. 2) of a single address bit.
 *
 * @param bvr_per_tb BVR of this bit for each TB, ordered by TB id
 * @param window     TB window size `w` (heuristically, #SMs)
 *
 * BVR values are quantized to 2^-20 before comparison so that equal
 * ratios computed from different request counts compare equal. If
 * fewer than `window` TBs exist, a single window covering all TBs is
 * used.
 *
 * Implemented as an incremental sliding-window multiset (count map
 * plus running entropy numerator maintained under add/evict), O(n)
 * amortized; `windowEntropyReference` is the straightforward
 * per-window sort kept as the oracle for tests and benches.
 */
double windowEntropy(const std::vector<double> &bvr_per_tb,
                     unsigned window);

/**
 * Reference implementation of `windowEntropy` (per-window
 * assign+sort, O(n * w log w)). Semantically identical; kept as the
 * test oracle and as the scalar baseline in `BENCH_profiler.json`.
 */
double windowEntropyReference(const std::vector<double> &bvr_per_tb,
                              unsigned window);

/**
 * Request-weighted window bit entropy.
 *
 * Eq. 2 computes the entropy of the *BVR-value distribution* inside
 * the window. On the paper's worked examples (Fig. 3 and footnote 1,
 * where BVRs are 0 or 1) this is identical to the binary entropy of
 * the probability that the bit is 1 across the window's requests,
 * p = mean(BVR). The two readings diverge for fractional BVRs: a
 * window of TBs that each sweep a bit uniformly (BVR 0.5 everywhere)
 * carries maximal information per request but has a single unique BVR
 * value. The figures (Fig. 5's non-valley benchmarks, Fig. 10 ALL)
 * reflect the request-weighted reading, so profiles default to it;
 * `windowEntropy` remains available as the literal BVR-distribution
 * form. See DESIGN.md.
 */
double windowBitEntropy(const std::vector<double> &bvr_per_tb,
                        unsigned window);

/** Which window-entropy reading a profile uses. */
enum class EntropyMetric
{
    BvrDistribution, ///< literal Eq. 2: entropy of unique-BVR histogram
    BitProbability,  ///< binary entropy of mean BVR (default)
};

/**
 * Per-bit entropy profile of one kernel or one application, with the
 * weight used for cross-kernel aggregation (= #memory requests).
 */
struct EntropyProfile
{
    std::vector<double> perBit;  ///< entropy of each address bit
    std::uint64_t weight = 0;    ///< memory requests represented

    unsigned
    numBits() const
    {
        return static_cast<unsigned>(perBit.size());
    }

    /** Mean entropy over a set of bit positions. */
    double meanOver(const std::vector<unsigned> &positions) const;

    /** Minimum entropy over a set of bit positions. */
    double minOver(const std::vector<unsigned> &positions) const;

    /**
     * Weighted average of per-kernel profiles (weights = request
     * counts), the paper's application-level aggregation.
     */
    static EntropyProfile combine(const std::vector<EntropyProfile> &ps);

    /**
     * Render bits [hi..lo] as a coarse text bar chart (one column per
     * bit, most significant on the left, ten height levels) used by
     * the Fig. 5 / Fig. 10 benches.
     */
    std::string chart(unsigned hi, unsigned lo) const;
};

/**
 * Compute a kernel's entropy profile from per-TB BVR vectors (ordered
 * by TB id). `weight` should be the kernel's total request count.
 */
EntropyProfile kernelProfile(
    const std::vector<std::vector<double>> &tb_bvrs, unsigned window,
    std::uint64_t weight,
    EntropyMetric metric = EntropyMetric::BitProbability);

/**
 * Bit-flip-rate entropy estimator used by prior work (Akin et al.,
 * Ghasempour et al.; paper Section VII): per bit, the fraction of
 * consecutive request pairs in which the bit toggles, fed through the
 * binary entropy function.
 *
 * The paper argues this estimator is unreliable for GPUs because
 * concurrent TBs interleave their requests in arbitrary ways — the
 * same request multiset can produce very different flip rates under
 * different interleavings, whereas the window-based metric is
 * order-free by construction. `tests/window_entropy_test.cc`
 * demonstrates exactly that.
 *
 * @param ordered_requests request addresses in observation order
 * @param nbits            address bits to profile
 */
EntropyProfile bitFlipProfile(std::span<const Addr> ordered_requests,
                              unsigned nbits);

} // namespace valley

#endif // VALLEY_ENTROPY_WINDOW_ENTROPY_HH
