/**
 * @file
 * Bit-sliced BVR accumulation (ROADMAP "batch/vectorize the entropy
 * profiler").
 *
 * `BvrAccumulator::add` walks every tracked bit of every address —
 * ~30 shift/mask/add triples per request, the dominant cost of the
 * Section III profiling pipeline now that the mapper itself is
 * byte-sliced. `SlicedBvrAccumulator` instead buffers a block of
 * addresses, transposes it into one 64-bit lane per address bit
 * (`bits::transpose64`) and accumulates each lane with a single
 * `popcount` — one operation per bit per 64 addresses. When the
 * tracked width fits in 32 bits (the paper's space is 30), two
 * addresses pack into each transpose word, so one 64x64 transpose
 * covers 128 addresses. Addresses left in a partially filled buffer
 * are folded in by a scalar tail path, so `bvrs()` is exact at any
 * stream length.
 *
 * The per-bit one-counts are exact integers either way and `bvrs()`
 * performs the same division, so the output is bit-identical to the
 * scalar accumulator (asserted in `tests/sliced_bvr_test.cc`).
 */

#ifndef VALLEY_ENTROPY_SLICED_BVR_HH
#define VALLEY_ENTROPY_SLICED_BVR_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hh"

namespace valley {

class SlicedBvrAccumulator
{
  public:
    explicit SlicedBvrAccumulator(unsigned nbits);

    /** Account one request address. */
    void
    add(Addr a)
    {
        buf[fill] = a;
        if (++fill == cap)
            flush();
    }

    /** Account a batch of request addresses. */
    void
    addMany(std::span<const Addr> addrs)
    {
        const Addr *p = addrs.data();
        std::size_t n = addrs.size();
        // Full blocks of an empty buffer slice straight from the
        // source span, skipping the buffer copy entirely.
        while (fill == 0 && n >= cap) {
            flushFrom(p);
            p += cap;
            n -= cap;
        }
        while (n > 0) {
            const std::size_t take =
                std::min<std::size_t>(cap - fill, n);
            std::copy_n(p, take, buf.begin() + fill);
            fill += static_cast<unsigned>(take);
            p += take;
            n -= take;
            if (fill == cap)
                flush();
        }
    }

    /**
     * Account a batch of addresses through a remap, fusing the
     * transform into the buffer fill so profiling under a BIM never
     * pays a per-address call on top of the accumulation. `fn` must
     * be a pure Addr -> Addr function (e.g. a captured
     * `CompiledTransform::apply`).
     */
    template <typename MapFn>
    void
    addManyMapped(std::span<const Addr> addrs, MapFn &&fn)
    {
        const Addr *p = addrs.data();
        std::size_t n = addrs.size();
        while (n > 0) {
            const std::size_t take =
                std::min<std::size_t>(cap - fill, n);
            for (std::size_t i = 0; i < take; ++i)
                buf[fill + i] = fn(p[i]);
            fill += static_cast<unsigned>(take);
            p += take;
            n -= take;
            if (fill == cap)
                flush();
        }
    }

    /** Number of accumulated requests (flushed or buffered). */
    std::uint64_t
    requestCount() const
    {
        return flushed + fill;
    }

    /** Bit width tracked. */
    unsigned numBits() const { return nbits; }

    /** Per-bit BVR in [0,1]; all zeros when no requests were added. */
    std::vector<double> bvrs() const;

  private:
    /** Transpose words per flush; buffer holds 2x when packed. */
    static constexpr unsigned kBlock = 64;

    /** Transpose the full buffer and popcount it into `ones`. */
    void
    flush()
    {
        flushFrom(buf.data());
        fill = 0;
    }

    /** Slice one full block (`cap` addresses) starting at `p`. */
    void flushFrom(const Addr *p);

    unsigned nbits;
    unsigned cap;      ///< buffer capacity: 128 packed, 64 otherwise
    unsigned fill = 0;
    std::uint64_t flushed = 0;
    std::vector<std::uint64_t> ones;
    std::array<std::uint64_t, 2 * kBlock> buf;
};

} // namespace valley

#endif // VALLEY_ENTROPY_SLICED_BVR_HH
