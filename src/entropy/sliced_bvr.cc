#include "entropy/sliced_bvr.hh"

#include <bit>

#include "common/bitops.hh"

namespace valley {

SlicedBvrAccumulator::SlicedBvrAccumulator(unsigned nbits_)
    : nbits(nbits_), cap(nbits_ <= 32 ? 2 * kBlock : kBlock),
      ones(nbits_, 0)
{
}

void
SlicedBvrAccumulator::flushFrom(const Addr *p)
{
    std::uint64_t lanes[kBlock];
    if (cap == 2 * kBlock) {
        // Packed mode (nbits <= 32): word i carries address i in its
        // low half and address i+64 in its high half, so one 64x64
        // transpose slices 128 addresses. Afterwards lane b holds bit
        // b of addresses 0..63 and lane b+32 bit b of 64..127. Junk
        // above bit `nbits` lands in lanes that are never read.
        for (unsigned i = 0; i < kBlock; ++i)
            lanes[i] = (p[i] & 0xFFFFFFFFull) | (p[i + kBlock] << 32);
        bits::transpose64(lanes);
        for (unsigned b = 0; b < nbits; ++b)
            ones[b] +=
                static_cast<unsigned>(std::popcount(lanes[b])) +
                static_cast<unsigned>(std::popcount(lanes[b + 32]));
    } else {
        // lanes[i] holds address i; after the transpose lanes[b]
        // holds bit b of all 64 addresses, one address per position.
        for (unsigned i = 0; i < kBlock; ++i)
            lanes[i] = p[i];
        bits::transpose64(lanes);
        for (unsigned b = 0; b < nbits; ++b)
            ones[b] += static_cast<unsigned>(std::popcount(lanes[b]));
    }
    flushed += cap;
}

std::vector<double>
SlicedBvrAccumulator::bvrs() const
{
    std::vector<double> out(nbits, 0.0);
    const std::uint64_t total = requestCount();
    if (total == 0)
        return out;
    // Scalar tail: fold the partially filled buffer into a copy of
    // the per-bit counts without disturbing the accumulator.
    std::vector<std::uint64_t> counts(ones);
    for (unsigned i = 0; i < fill; ++i)
        for (unsigned b = 0; b < nbits; ++b)
            counts[b] += (buf[i] >> b) & 1;
    for (unsigned b = 0; b < nbits; ++b)
        out[b] = static_cast<double>(counts[b]) /
                 static_cast<double>(total);
    return out;
}

} // namespace valley
