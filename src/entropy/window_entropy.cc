#include "entropy/window_entropy.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <sstream>
#include <unordered_map>

namespace valley {

double
shannonEntropyBaseV(const std::vector<double> &probs)
{
    // One pass: count the support and accumulate -sum p ln p
    // together; the log-base division happens once at the end, which
    // also guards log(v) == 0 for single-outcome distributions here
    // instead of at every call site.
    std::size_t v = 0;
    double h_num = 0.0;
    for (double p : probs) {
        if (p > 0.0) {
            ++v;
            h_num -= p * std::log(p);
        }
    }
    if (v <= 1)
        return 0.0;
    // Clamp numeric noise.
    return std::min(1.0,
                    std::max(0.0,
                             h_num / std::log(static_cast<double>(v))));
}

BvrAccumulator::BvrAccumulator(unsigned nbits_)
    : nbits(nbits_), ones(nbits_, 0)
{
}

void
BvrAccumulator::add(Addr a)
{
    ++total;
    for (unsigned b = 0; b < nbits; ++b)
        ones[b] += (a >> b) & 1;
}

std::vector<double>
BvrAccumulator::bvrs() const
{
    std::vector<double> out(nbits, 0.0);
    if (!total)
        return out;
    for (unsigned b = 0; b < nbits; ++b)
        out[b] = static_cast<double>(ones[b]) / static_cast<double>(total);
    return out;
}

namespace {

/** Quantize a BVR so equal ratios from different counts compare equal. */
std::uint32_t
quantize(double bvr)
{
    return static_cast<std::uint32_t>(
        std::lround(bvr * static_cast<double>(1u << 20)));
}

/**
 * Binary entropy with the Eq. 1 log base: exactly the floating-point
 * operations of `shannonEntropyBaseV({p, 1.0 - p})`, in the same
 * order, without materializing the two-element vector. Bit-identical
 * to the vector form (asserted in tests/window_entropy_test.cc);
 * allocation-free because this runs once per window slide inside the
 * search's candidate-scoring tail, where a heap allocation per window
 * dominates once the plane sweep itself is fast.
 */
inline double
binaryEntropyBaseV(double p)
{
    std::size_t v = 0;
    double h_num = 0.0;
    if (p > 0.0) {
        ++v;
        h_num -= p * std::log(p);
    }
    const double q = 1.0 - p;
    if (q > 0.0) {
        ++v;
        h_num -= q * std::log(q);
    }
    if (v <= 1)
        return 0.0;
    return std::min(1.0,
                    std::max(0.0,
                             h_num / std::log(static_cast<double>(v))));
}

/**
 * Memoized `binaryEntropyBaseV`: a direct-mapped, thread-local cache
 * keyed on the exact bit pattern of `p`. A hit returns the double a
 * previous identical input produced; a miss computes and stores it —
 * either way the result equals `binaryEntropyBaseV(p)` bit for bit,
 * so memoization cannot change any profile or search trajectory. It
 * pays because window means repeat massively in practice: TB BVR
 * series are periodic (tiled synth kernels, repeated CTAs), and the
 * search re-scores the same row masks across moves and restarts —
 * while the two `std::log` calls per window slide are what dominates
 * a candidate evaluation once the plane sweep itself is fast.
 *
 * Collisions just overwrite (direct-mapped); zero-initialized keys
 * are unreachable because callers guard p > 0 (the bit pattern of
 * +0.0 is 0, and any p > 0.0 — including denormals — has a nonzero
 * pattern).
 */
double
binaryEntropyMemo(double p)
{
    struct Entry
    {
        std::uint64_t key;
        double h;
    };
    constexpr std::size_t kSlotBits = 14;
    static thread_local Entry cache[std::size_t{1} << kSlotBits];

    std::uint64_t pat;
    std::memcpy(&pat, &p, sizeof pat);
    const std::size_t idx = static_cast<std::size_t>(
        (pat * 0x9E3779B97F4A7C15ull) >> (64 - kSlotBits));
    Entry &e = cache[idx];
    if (e.key != pat) {
        e.key = pat;
        e.h = binaryEntropyBaseV(p);
    }
    return e.h;
}

/** Entropy (Eq. 1) of one window of quantized BVRs; scratch is reused. */
double
oneWindow(const std::uint32_t *begin, std::size_t w,
          std::vector<std::uint32_t> &scratch)
{
    scratch.assign(begin, begin + w);
    std::sort(scratch.begin(), scratch.end());

    // Count distinct values and their multiplicities.
    std::size_t v = 0;
    double h_num = 0.0; // -sum p ln p
    std::size_t i = 0;
    while (i < w) {
        std::size_t j = i;
        while (j < w && scratch[j] == scratch[i])
            ++j;
        const double p =
            static_cast<double>(j - i) / static_cast<double>(w);
        h_num -= p * std::log(p);
        ++v;
        i = j;
    }
    if (v <= 1)
        return 0.0;
    const double h = h_num / std::log(static_cast<double>(v));
    return std::min(1.0, std::max(0.0, h));
}

} // namespace

double
windowEntropyReference(const std::vector<double> &bvr_per_tb,
                       unsigned window)
{
    const std::size_t n = bvr_per_tb.size();
    if (n == 0 || window == 0)
        return 0.0;

    std::vector<std::uint32_t> q(n);
    for (std::size_t i = 0; i < n; ++i)
        q[i] = quantize(bvr_per_tb[i]);

    const std::size_t w = std::min<std::size_t>(window, n);
    const std::size_t windows = n - w + 1;
    std::vector<std::uint32_t> scratch;
    double sum = 0.0;
    for (std::size_t i = 0; i < windows; ++i)
        sum += oneWindow(q.data() + i, w, scratch);
    return sum / static_cast<double>(windows);
}

double
windowEntropy(const std::vector<double> &bvr_per_tb, unsigned window)
{
    const std::size_t n = bvr_per_tb.size();
    if (n == 0 || window == 0)
        return 0.0;

    std::vector<std::uint32_t> q(n);
    for (std::size_t i = 0; i < n; ++i)
        q[i] = quantize(bvr_per_tb[i]);

    const std::size_t w = std::min<std::size_t>(window, n);
    const std::size_t windows = n - w + 1;

    // Incremental sliding multiset: a count map over the quantized
    // BVRs in the current window plus a running h_num = -sum p ln p
    // over its distinct values, both maintained under the add/evict
    // of one TB per slide — O(n) amortized instead of the reference's
    // per-window assign+sort. Since every probability is c/w for a
    // fixed w, the per-count terms are memoized so an add/evict pair
    // that restores a count contributes exactly +-the same double and
    // the running sum drifts by at most a few ulp per slide (the
    // oracle comparison lives in tests/window_entropy_test.cc).
    std::vector<double> term(w + 1, 0.0);
    for (std::size_t c = 1; c < w; ++c) {
        const double p =
            static_cast<double>(c) / static_cast<double>(w);
        term[c] = -p * std::log(p);
    }

    std::unordered_map<std::uint32_t, std::uint32_t> count;
    count.reserve(2 * w);
    double h_num = 0.0;
    const auto addTb = [&](std::uint32_t v) {
        std::uint32_t &c = count[v];
        h_num -= term[c];
        h_num += term[++c];
    };
    const auto evictTb = [&](std::uint32_t v) {
        const auto it = count.find(v);
        h_num -= term[it->second];
        if (--it->second == 0)
            count.erase(it);
        else
            h_num += term[it->second];
    };

    for (std::size_t i = 0; i < w; ++i)
        addTb(q[i]);
    double sum = 0.0;
    for (std::size_t i = 0;; ++i) {
        const std::size_t v = count.size();
        if (v > 1) {
            const double h =
                h_num / std::log(static_cast<double>(v));
            sum += std::min(1.0, std::max(0.0, h));
        }
        if (i + 1 >= windows)
            break;
        // Evict before adding so no count ever exceeds w (term[] has
        // exactly w+1 entries).
        evictTb(q[i]);
        addTb(q[i + w]);
    }
    return sum / static_cast<double>(windows);
}

double
windowBitEntropy(const std::vector<double> &bvr_per_tb, unsigned window)
{
    const std::size_t n = bvr_per_tb.size();
    if (n == 0 || window == 0)
        return 0.0;
    const std::size_t w = std::min<std::size_t>(window, n);
    const std::size_t windows = n - w + 1;

    // Sliding sum of BVRs; per window p = sum / w, H = H(p, 1-p).
    double sum_bvr = 0.0;
    for (std::size_t i = 0; i < w; ++i)
        sum_bvr += bvr_per_tb[i];
    double total = 0.0;
    for (std::size_t i = 0;; ++i) {
        const double p = sum_bvr / static_cast<double>(w);
        if (p > 0.0 && p < 1.0)
            total += binaryEntropyMemo(p);
        if (i + 1 >= windows)
            break;
        sum_bvr += bvr_per_tb[i + w] - bvr_per_tb[i];
    }
    return total / static_cast<double>(windows);
}

double
EntropyProfile::meanOver(const std::vector<unsigned> &positions) const
{
    if (positions.empty())
        return 0.0;
    double s = 0.0;
    for (unsigned p : positions)
        s += p < perBit.size() ? perBit[p] : 0.0;
    return s / static_cast<double>(positions.size());
}

double
EntropyProfile::minOver(const std::vector<unsigned> &positions) const
{
    double m = 1.0;
    for (unsigned p : positions)
        m = std::min(m, p < perBit.size() ? perBit[p] : 0.0);
    return m;
}

EntropyProfile
EntropyProfile::combine(const std::vector<EntropyProfile> &ps)
{
    EntropyProfile out;
    if (ps.empty())
        return out;
    out.perBit.assign(ps.front().perBit.size(), 0.0);
    std::uint64_t total = 0;
    for (const EntropyProfile &p : ps)
        total += p.weight;
    if (total == 0)
        return out;
    for (const EntropyProfile &p : ps) {
        assert(p.perBit.size() == out.perBit.size());
        const double w = static_cast<double>(p.weight) /
                         static_cast<double>(total);
        for (std::size_t b = 0; b < out.perBit.size(); ++b)
            out.perBit[b] += w * p.perBit[b];
    }
    out.weight = total;
    return out;
}

std::string
EntropyProfile::chart(unsigned hi, unsigned lo) const
{
    // 10 height levels; row 10 = entropy 1.0, row 1 = entropy 0.1.
    constexpr int levels = 10;
    std::ostringstream out;
    for (int level = levels; level >= 1; --level) {
        const double threshold =
            (static_cast<double>(level) - 0.5) / levels;
        out << (level == levels ? "1.0 |" :
                level == 5      ? "0.5 |" : "    |");
        for (unsigned b = hi + 1; b-- > lo;) {
            const double e = b < perBit.size() ? perBit[b] : 0.0;
            out << (e >= threshold ? '#' : ' ');
        }
        out << '\n';
    }
    out << "    +";
    for (unsigned b = hi + 1; b-- > lo;)
        out << '-';
    out << "\n     ";
    for (unsigned b = hi + 1; b-- > lo;)
        out << (b % 10 == 0
                    ? static_cast<char>('0' + b / 10 % 10)
                    : ' ');
    out << "\n     ";
    for (unsigned b = hi + 1; b-- > lo;)
        out << static_cast<char>('0' + b % 10);
    out << '\n';
    return out.str();
}

EntropyProfile
bitFlipProfile(std::span<const Addr> ordered_requests, unsigned nbits)
{
    EntropyProfile out;
    out.perBit.assign(nbits, 0.0);
    out.weight = ordered_requests.size();
    if (ordered_requests.size() < 2)
        return out;

    std::vector<std::uint64_t> flips(nbits, 0);
    for (std::size_t i = 1; i < ordered_requests.size(); ++i) {
        const Addr diff = ordered_requests[i] ^
                          ordered_requests[i - 1];
        for (unsigned b = 0; b < nbits; ++b)
            flips[b] += (diff >> b) & 1;
    }
    // Prior work uses the flip rate itself as the entropy proxy
    // (more toggles == more information); already in [0, 1].
    const double pairs =
        static_cast<double>(ordered_requests.size() - 1);
    for (unsigned b = 0; b < nbits; ++b)
        out.perBit[b] = static_cast<double>(flips[b]) / pairs;
    return out;
}

EntropyProfile
kernelProfile(const std::vector<std::vector<double>> &tb_bvrs,
              unsigned window, std::uint64_t weight, EntropyMetric metric)
{
    EntropyProfile out;
    out.weight = weight;
    if (tb_bvrs.empty())
        return out;
    const std::size_t nbits = tb_bvrs.front().size();
    out.perBit.assign(nbits, 0.0);

    // Transpose: the window metrics consume one bit across all TBs.
    std::vector<double> series(tb_bvrs.size());
    for (std::size_t b = 0; b < nbits; ++b) {
        for (std::size_t t = 0; t < tb_bvrs.size(); ++t) {
            assert(tb_bvrs[t].size() == nbits);
            series[t] = tb_bvrs[t][b];
        }
        out.perBit[b] = metric == EntropyMetric::BvrDistribution
                            ? windowEntropy(series, window)
                            : windowBitEntropy(series, window);
    }
    return out;
}

} // namespace valley
