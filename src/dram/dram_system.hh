/**
 * @file
 * The multi-channel DRAM system: one FR-FCFS controller per channel
 * (conventional GDDR5) or per vault (3D-stacked).
 */

#ifndef VALLEY_DRAM_DRAM_SYSTEM_HH
#define VALLEY_DRAM_DRAM_SYSTEM_HH

#include <vector>

#include "dram/memory_controller.hh"

namespace valley {

/**
 * Aggregates the per-channel controllers and exposes the sampling
 * hooks for the channel/bank-level parallelism metrics (Fig. 14).
 */
class DramSystem
{
  public:
    DramSystem(unsigned num_channels, unsigned banks_per_channel,
               const DramTiming &timing, unsigned queue_capacity = 64);

    /** Queue admission test for a channel. */
    bool
    canAccept(unsigned channel) const
    {
        return controllers[channel].canAccept();
    }

    /** Enqueue a transaction on its channel (false when full). */
    bool
    enqueue(const DramRequest &req, Cycle now)
    {
        return controllers[req.coord.channel].enqueue(req, now);
    }

    /** Advance all channels one DRAM cycle; collect completions. */
    void
    tick(Cycle now, std::vector<DramCompletion> &done)
    {
        for (auto &mc : controllers)
            mc.tick(now, done);
    }

    unsigned
    numChannels() const
    {
        return static_cast<unsigned>(controllers.size());
    }

    const MemoryController &
    channel(unsigned c) const
    {
        return controllers[c];
    }

    /** Channels with >= 1 outstanding request (Fig. 14b sampling). */
    unsigned channelsWithPending() const;

    /** Sum over channels of banks with pending requests (Fig. 14c). */
    unsigned banksWithPending() const;

    /** Total outstanding transactions. */
    unsigned totalPending() const;

    /** Aggregated counters over all channels. */
    DramChannelStats totalStats() const;

  private:
    std::vector<MemoryController> controllers;
};

} // namespace valley

#endif // VALLEY_DRAM_DRAM_SYSTEM_HH
