/**
 * @file
 * Per-channel FR-FCFS memory controller with open-page row-buffer
 * policy (Rixner et al. [17]; Table I).
 *
 * The controller owns the bank state machines of one channel. Every
 * DRAM command cycle it issues at most one command:
 *
 *  1. *First-ready*: the oldest queued request whose bank has the
 *     right row open and is ready issues a column access.
 *  2. Otherwise *FCFS*: the oldest request whose bank can accept a
 *     command makes progress — precharge if a different row is open,
 *     activate if the bank is closed.
 *
 * Column accesses reserve the shared data bus for tBurst cycles;
 * request data is ready tCL + tBurst cycles after the column command.
 * Event counts (activations, reads, writes, row hits/misses) feed the
 * Micron power model and the Fig. 15/16 benches.
 */

#ifndef VALLEY_DRAM_MEMORY_CONTROLLER_HH
#define VALLEY_DRAM_MEMORY_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hh"
#include "dram/dram_timing.hh"
#include "mapping/address_layout.hh"

namespace valley {

/** A DRAM transaction (one 128 B line fill or writeback). */
struct DramRequest
{
    DramCoord coord;       ///< mapped channel/bank/row/column
    bool write = false;    ///< writeback (no completion callback)
    std::uint64_t tag = 0; ///< caller cookie returned on completion
    Cycle enqueued = 0;    ///< DRAM cycle of arrival (for latency)
};

/** A finished read transaction. */
struct DramCompletion
{
    std::uint64_t tag = 0;
    Cycle finished = 0; ///< DRAM cycle the data burst completed
    bool write = false;
};

/** Event counters for one channel. */
struct DramChannelStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowMisses = 0;   ///< accesses that required an activation
    std::uint64_t activations = 0;
    std::uint64_t precharges = 0;
    std::uint64_t busBusyCycles = 0;
    std::uint64_t latencySum = 0;  ///< enqueue-to-data DRAM cycles (reads)

    bool operator==(const DramChannelStats &) const = default;

    /** Column accesses served from an already-open row (Fig. 15). */
    double
    rowHitRate() const
    {
        const std::uint64_t total = reads + writes;
        if (total == 0)
            return 0.0;
        const std::uint64_t misses = std::min(rowMisses, total);
        return static_cast<double>(total - misses) /
               static_cast<double>(total);
    }
};

/**
 * One channel's controller: request queue + bank state + data bus.
 */
class MemoryController
{
  public:
    MemoryController(unsigned num_banks, const DramTiming &timing,
                     unsigned queue_capacity = 64);

    /** True iff the request queue has room. */
    bool canAccept() const { return queue.size() < queueCapacity; }

    /**
     * Enqueue a transaction; returns false (and drops it) when full —
     * callers must retry, providing backpressure into the LLC.
     */
    bool enqueue(const DramRequest &req, Cycle now);

    /**
     * Advance one DRAM command cycle; completed reads are appended to
     * `done`.
     */
    void tick(Cycle now, std::vector<DramCompletion> &done);

    /** Outstanding requests (queued + in flight). */
    unsigned pending() const;

    /** Number of banks with at least one queued request. */
    unsigned banksWithPending() const;

    const DramChannelStats &stats() const { return stats_; }

    unsigned numBanks() const
    {
        return static_cast<unsigned>(banks.size());
    }

  private:
    struct Bank
    {
        bool open = false;
        unsigned openRow = 0;
        Cycle readyAt = 0;      ///< earliest next command
        Cycle activatedAt = 0;  ///< for the tRAS constraint
        unsigned queued = 0;    ///< requests in queue targeting this bank
    };

    /** In-flight column access waiting for its data burst. */
    struct Inflight
    {
        std::uint64_t tag;
        Cycle doneAt;
        bool write;
        Cycle enqueued;
    };

    bool tryIssueColumn(Cycle now);
    bool tryBankCommand(Cycle now);

    DramTiming timing;
    unsigned queueCapacity;
    std::vector<Bank> banks;
    std::deque<DramRequest> queue;
    std::vector<Inflight> inflight;
    Cycle busFreeAt = 0;
    Cycle nextActivateAt = 0; ///< tRRD window across banks
    DramChannelStats stats_;
};

} // namespace valley

#endif // VALLEY_DRAM_MEMORY_CONTROLLER_HH
