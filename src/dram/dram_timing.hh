/**
 * @file
 * DRAM device timing parameters (Table I).
 *
 * All values are in DRAM command-clock cycles of the device's clock
 * domain (924 MHz for the Hynix GDDR5 baseline). A 128 B memory
 * transaction occupies the data bus for `tBurst` cycles; with the
 * GDDR5 configuration this yields 128 B / (4 / 0.924 GHz) = 29.6 GB/s
 * per channel, i.e. 118.3 GB/s over four channels as in the paper.
 */

#ifndef VALLEY_DRAM_DRAM_TIMING_HH
#define VALLEY_DRAM_DRAM_TIMING_HH

namespace valley {

/** Device timing and clocking for one DRAM channel. */
struct DramTiming
{
    unsigned tCL = 12;   ///< column access (CAS) latency
    unsigned tRCD = 12;  ///< row-to-column (activate) delay
    unsigned tRP = 12;   ///< row precharge latency
    unsigned tRAS = 28;  ///< minimum row-open time
    unsigned tBurst = 4; ///< data bus occupancy per 128 B transaction
    unsigned tWR = 12;   ///< write recovery before precharge
    unsigned tRRD = 6;   ///< activate-to-activate (different banks)
    double clockGhz = 0.924; ///< command clock frequency

    /** Hynix GDDR5, 12-12-12 (CL-tRCD-tRP), 924 MHz (Table I). */
    static DramTiming
    hynixGddr5()
    {
        return DramTiming{};
    }

    /**
     * 3D-stacked vault timing (Table I bottom). Per-vault TSV signaling
     * delivers 10 GB/s (64 TSVs at 1.25 Gb/s); 64 vaults give 640 GB/s.
     * Bank core timings stay DRAM-like.
     */
    static DramTiming
    stacked3d()
    {
        DramTiming t;
        t.tCL = 11;
        t.tRCD = 11;
        t.tRP = 11;
        t.tRAS = 26;
        // 128 B / 10 GB/s = 12.8 ns = ~16 cycles at 1.25 GHz.
        t.tBurst = 16;
        t.clockGhz = 1.25;
        return t;
    }
};

} // namespace valley

#endif // VALLEY_DRAM_DRAM_TIMING_HH
