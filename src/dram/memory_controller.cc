#include "dram/memory_controller.hh"

#include <algorithm>
#include <cassert>

namespace valley {

MemoryController::MemoryController(unsigned num_banks,
                                   const DramTiming &timing_,
                                   unsigned queue_capacity)
    : timing(timing_), queueCapacity(queue_capacity), banks(num_banks)
{
    assert(num_banks >= 1);
}

bool
MemoryController::enqueue(const DramRequest &req, Cycle now)
{
    if (!canAccept())
        return false;
    assert(req.coord.bank < banks.size());
    DramRequest r = req;
    r.enqueued = now;
    banks[r.coord.bank].queued++;
    queue.push_back(r);
    return true;
}

bool
MemoryController::tryIssueColumn(Cycle now)
{
    if (busFreeAt > now)
        return false;
    for (auto it = queue.begin(); it != queue.end(); ++it) {
        Bank &bank = banks[it->coord.bank];
        if (bank.open && bank.openRow == it->coord.row &&
            bank.readyAt <= now) {
            // Column access: reserve the bus, schedule completion.
            busFreeAt = now + timing.tBurst;
            stats_.busBusyCycles += timing.tBurst;
            const Cycle done = now + timing.tCL + timing.tBurst;
            // Write recovery keeps the bank busy slightly longer.
            bank.readyAt =
                it->write ? now + timing.tBurst + timing.tWR
                          : now + timing.tBurst;
            if (it->write)
                stats_.writes++;
            else
                stats_.reads++;
            inflight.push_back(
                Inflight{it->tag, done, it->write, it->enqueued});
            bank.queued--;
            queue.erase(it);
            return true;
        }
    }
    return false;
}

bool
MemoryController::tryBankCommand(Cycle now)
{
    // FCFS over requests whose bank can make progress. A request
    // counts as a row miss once, when its row conflict is first
    // resolved (precharge or activate of its row).
    for (auto &req : queue) {
        Bank &bank = banks[req.coord.bank];
        if (bank.readyAt > now)
            continue;
        if (bank.open && bank.openRow == req.coord.row)
            continue; // a column access will pick this up when ready
        if (bank.open) {
            // FR-FCFS: keep the row open while younger row hits are
            // still queued for it, but cap the wait so conflicting
            // requests cannot starve.
            constexpr Cycle starvation_limit = 2000;
            if (now - req.enqueued < starvation_limit) {
                bool has_hits = false;
                for (const auto &other : queue) {
                    if (other.coord.bank == req.coord.bank &&
                        other.coord.row == bank.openRow) {
                        has_hits = true;
                        break;
                    }
                }
                if (has_hits)
                    continue;
            }
            // Conflict: close the current row (respect tRAS).
            const Cycle earliest = bank.activatedAt + timing.tRAS;
            if (earliest > now)
                continue;
            bank.open = false;
            bank.readyAt = now + timing.tRP;
            stats_.precharges++;
            return true;
        }
        // Closed bank: activate the request's row (respect tRRD).
        if (nextActivateAt > now)
            continue;
        bank.open = true;
        bank.openRow = req.coord.row;
        bank.readyAt = now + timing.tRCD;
        bank.activatedAt = now;
        nextActivateAt = now + timing.tRRD;
        stats_.activations++;
        stats_.rowMisses++;
        return true;
    }
    return false;
}

void
MemoryController::tick(Cycle now, std::vector<DramCompletion> &done)
{
    // Retire finished bursts.
    for (std::size_t i = 0; i < inflight.size();) {
        if (inflight[i].doneAt <= now) {
            if (!inflight[i].write) {
                stats_.latencySum += now - inflight[i].enqueued;
                done.push_back(DramCompletion{inflight[i].tag, now,
                                              false});
            }
            inflight[i] = inflight.back();
            inflight.pop_back();
        } else {
            ++i;
        }
    }

    // One command per cycle: column accesses take priority (FR), then
    // bank management for the oldest blocked request (FCFS).
    if (!tryIssueColumn(now))
        tryBankCommand(now);
}

unsigned
MemoryController::pending() const
{
    return static_cast<unsigned>(queue.size() + inflight.size());
}

unsigned
MemoryController::banksWithPending() const
{
    unsigned n = 0;
    for (const Bank &b : banks)
        n += b.queued > 0;
    return n;
}

} // namespace valley
