#include "dram/dram_system.hh"

namespace valley {

DramSystem::DramSystem(unsigned num_channels, unsigned banks_per_channel,
                       const DramTiming &timing, unsigned queue_capacity)
{
    controllers.reserve(num_channels);
    for (unsigned c = 0; c < num_channels; ++c)
        controllers.emplace_back(banks_per_channel, timing,
                                 queue_capacity);
}

unsigned
DramSystem::channelsWithPending() const
{
    unsigned n = 0;
    for (const auto &mc : controllers)
        n += mc.pending() > 0;
    return n;
}

unsigned
DramSystem::banksWithPending() const
{
    unsigned n = 0;
    for (const auto &mc : controllers)
        n += mc.banksWithPending();
    return n;
}

unsigned
DramSystem::totalPending() const
{
    unsigned n = 0;
    for (const auto &mc : controllers)
        n += mc.pending();
    return n;
}

DramChannelStats
DramSystem::totalStats() const
{
    DramChannelStats total;
    for (const auto &mc : controllers) {
        const DramChannelStats &s = mc.stats();
        total.reads += s.reads;
        total.writes += s.writes;
        total.rowMisses += s.rowMisses;
        total.activations += s.activations;
        total.precharges += s.precharges;
        total.busBusyCycles += s.busBusyCycles;
        total.latencySum += s.latencySum;
    }
    return total;
}

} // namespace valley
